"""Per-shard worker: one columnar engine behind the serve protocol.

A :class:`ShardServer` is a :class:`~repro.serve.server.QueryServer`
over one shard's slice of the dataset, extended with the two scatter
ops a coordinator fans out:

* ``nwc_scatter`` — :meth:`~repro.core.engine.NWCEngine.nwc_ordered`
  restricted to the shard's anchor band, optionally seeded with a
  ``bound`` forwarded from faster shards; answers carry the merge
  order key.
* ``knwc_pool`` — :meth:`~repro.core.engine.NWCEngine.knwc_candidates`:
  a rank-ordered raw candidate pool with per-instance order keys and
  the completeness horizon.

Scatter ops bypass the per-worker result cache (their answers depend on
the coordinator-supplied bound); the coordinator owns the semantic
cache instead.  Everything else — the plain query ops, update ops with
WAL-before-apply durability, request-id dedupe, checkpointing, drain —
is inherited unchanged, so one shard worker is operationally identical
to a single-engine server (PR 7's supervisor restarts it with its WAL
intact).

At boot the worker mmap-loads its shard page file as a read-only
:class:`~repro.index.FlatRTree` (zero-copy: replicas of the same shard
share the page cache) next to the mutable R*-tree that absorbs updates;
the engine transparently falls back to an in-memory rebuild once the
first update dirties the snapshot.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..core import NWCEngine
from ..core.schemes import Scheme
from ..index import FlatRTree, load_tree
from ..serve import protocol
from ..serve.durability import DurabilityConfig, recover
from ..serve.server import QueryServer, ServeConfig
from ..storage.wal import crash_point
from ..sub import subscription_from_record
from ..sub.index import _encode_radius
from .partition import ShardManifest

__all__ = ["ShardServer", "build_shard_server", "make_shard_engine"]


def make_shard_engine(
    manifest: ShardManifest,
    directory: str,
    index: int,
    tree=None,
    scheme: Scheme = Scheme.NWC_STAR,
    execution: str = "columnar",
    metrics=None,
    tracer=None,
) -> NWCEngine:
    """Build shard ``index``'s engine.

    With ``tree=None`` the shard page file is the source of truth: the
    mutable R*-tree is loaded from it and the columnar snapshot is
    mmap-ed zero-copy (`FlatRTree.from_page_file` produces the same
    array layout as an in-memory conversion, so fresh-built and
    mmap-loaded shards answer bit-identically).  A recovered checkpoint
    ``tree`` (see :func:`~repro.serve.durability.recover`) skips the
    mmap — its snapshot is rebuilt in memory on first use.

    The DEP grid is built over the *dataset* extent, so empty and
    sparse shards get a valid (all-zero) grid instead of a failed
    root-MBR probe.
    """
    if tree is None:
        path = manifest.shard_path(directory, index)
        tree = load_tree(path)
        flat = None
        if execution == "columnar" and tree.size:
            flat = FlatRTree.from_page_file(path, stats=tree.stats)
        return NWCEngine(tree, scheme=scheme, extent=manifest.extent,
                         execution=execution, flat=flat,
                         metrics=metrics, tracer=tracer)
    return NWCEngine(tree, scheme=scheme, extent=manifest.extent,
                     execution=execution, metrics=metrics, tracer=tracer)


class ShardServer(QueryServer):
    """A query server bound to one shard of a :class:`ShardManifest`."""

    _OPS = QueryServer._OPS + ("nwc_scatter", "knwc_pool",
                               "sub_track", "sub_untrack")
    _LATENCY_OPS = QueryServer._LATENCY_OPS + ("nwc_scatter", "knwc_pool",
                                               "sub_track", "sub_untrack")

    def __init__(self, engine: NWCEngine, manifest: ShardManifest,
                 shard_index: int, config: ServeConfig | None = None,
                 metrics=None, durable=None) -> None:
        super().__init__(engine, config=config, metrics=metrics,
                         durable=durable)
        # The scatter entry points (nwc_ordered / knwc_candidates)
        # thread query-local state — the anchor restriction and the
        # order-key origin — through engine instance fields, so two
        # engine calls interleaved on executor threads would corrupt
        # each other's merge order keys.  A shard worker therefore pins
        # engine work to one thread at a time; read parallelism comes
        # from the process fleet, not from threads within one shard.
        self._engine_lock = threading.Lock()
        self.manifest = manifest
        self.shard_index = shard_index
        self.anchor_region = manifest.anchor_region(shard_index)
        lo, hi = manifest.owned_interval(shard_index)
        self._owned_lo, self._owned_hi = lo, hi
        # Logical (owned) size: halo copies excluded.  Counted over the
        # recovered tree, so it is exact after WAL replay too.
        self.owned_size = sum(
            1 for obj in engine.tree.iter_objects() if self._owns(obj.x)
        )

    def _owns(self, x: float) -> bool:
        return self._owned_lo <= x < self._owned_hi

    async def _run(self, fn, *args):
        def serialized():
            with self._engine_lock:
                return fn(*args)
        return await super()._run(serialized)

    # ------------------------------------------------------------------
    # Scatter ops
    # ------------------------------------------------------------------
    async def _op_nwc_scatter(self, payload: dict[str, Any]) -> dict[str, Any]:
        query = protocol.parse_nwc(payload)
        bound = protocol.parse_bound(payload)
        ctx = self._trace_context(payload)
        traced = ctx is not None and ctx.sampled
        refused = self._check_admission()
        if refused is not None:
            return refused
        start = time.perf_counter()
        with self._admitted():
            deadline = self._deadline(payload)
            async with self._scheduler.read(deadline):
                self._refresh_pressure_gauges()

                def run():
                    return self.engine.nwc_ordered(
                        query, bound=bound,
                        anchor_region=self.anchor_region,
                    )

                if traced:
                    # _run serializes engine work behind _engine_lock,
                    # so the tracer swap + query is atomic and the
                    # I/O delta belongs to this query alone.
                    (result, order), root, dropped = await self._run(
                        self._trace_engine_call, run)
                else:
                    result, order = await self._run(run)
                version = self.version
            self._m_latency[("nwc_scatter", "engine")].observe(
                time.perf_counter() - start)
            response = {
                "ok": True, "op": "nwc_scatter", "version": version,
                "shard": self.shard_index,
                "result": protocol.serialize_nwc(result),
                "order": None if order is None else list(order),
                "stats": {"node_accesses": result.node_accesses},
            }
            if traced:
                response["trace"] = self._trace_envelope(ctx, root, dropped)
            return response

    async def _op_knwc_pool(self, payload: dict[str, Any]) -> dict[str, Any]:
        query, _maintenance = protocol.parse_knwc(payload)
        limit = protocol.parse_pool_limit(payload)
        bound = protocol.parse_bound(payload)
        ctx = self._trace_context(payload)
        traced = ctx is not None and ctx.sampled
        refused = self._check_admission()
        if refused is not None:
            return refused
        start = time.perf_counter()
        with self._admitted():
            deadline = self._deadline(payload)
            async with self._scheduler.read(deadline):
                self._refresh_pressure_gauges()

                def run():
                    pool = self.engine.knwc_candidates(
                        query, limit, bound=bound,
                        anchor_region=self.anchor_region,
                    )
                    accesses = self.engine.tree.stats.snapshot().get(
                        "node_accesses", 0)
                    return pool, accesses

                if traced:
                    (pool, accesses), root, dropped = await self._run(
                        self._trace_engine_call, run)
                else:
                    (pool, accesses) = await self._run(run)
                version = self.version
            self._m_latency[("knwc_pool", "engine")].observe(
                time.perf_counter() - start)
            response = {
                "ok": True, "op": "knwc_pool", "version": version,
                "shard": self.shard_index,
                "pool": {
                    "groups": [protocol._serialize_group(g)
                               for g in pool.groups],
                    "orders": [list(order) for order in pool.orders],
                    "horizon": pool.horizon,
                    "reason": pool.reason,
                },
                "stats": {"node_accesses": accesses},
            }
            if traced:
                response["trace"] = self._trace_envelope(ctx, root, dropped)
            return response

    # ------------------------------------------------------------------
    # Sentinel tracking (coordinator-owned fleet subscriptions)
    # ------------------------------------------------------------------
    async def _op_sub_track(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Upsert one *shield sentinel*: the geometry + shield radii of
        a fleet subscription the coordinator owns.  Sentinels never
        evaluate anything on the worker — they only make update acks
        carry ``subs`` hints (see ``_reconcile_subs``), so the
        coordinator re-gathers exactly the standing queries an update
        could have changed.  WAL-logged like any update: a worker that
        is ``kill -9``-ed mid-burst recovers its sentinels and keeps
        hinting."""
        request_id = protocol.parse_request_id(payload)
        sub_id = protocol.parse_subscription_id(payload, required=True)
        x = protocol._number(payload, "x")
        y = protocol._number(payload, "y")
        n = protocol._integer(payload, "n", 1)
        ins = protocol.parse_radius(payload, "ins")
        dele = protocol.parse_radius(payload, "del")
        refused = self._check_admission()
        if refused is not None:
            return refused
        start = time.perf_counter()
        with self._admitted():
            deadline = self._deadline(payload)
            async with self._scheduler.write(deadline):
                self._refresh_pressure_gauges()
                replayed = self._deduped(request_id)
                if replayed is not None:
                    return replayed
                record = {"op": "sub_track", "sub": sub_id,
                          "x": x, "y": y, "n": n,
                          "ins": _encode_radius(ins),
                          "del": _encode_radius(dele)}
                if request_id is not None:
                    record["req"] = request_id
                await self._run(self._wal_append, record)
                sentinel = subscription_from_record(record)
                self.subs.add(sentinel)
                self._g_sub_active.set(len(self.subs))
                response = {"ok": True, "op": "sub_track", "sub": sub_id,
                            "version": self.version}
                self._remember(request_id, response)
                self._note_durable_record()
            self._m_latency[("sub_track", "engine")].observe(
                time.perf_counter() - start)
            crash_point("before_ack")
            return response

    async def _op_sub_untrack(self, payload: dict[str, Any]) -> dict[str, Any]:
        request_id = protocol.parse_request_id(payload)
        sub_id = protocol.parse_subscription_id(payload, required=True)
        refused = self._check_admission()
        if refused is not None:
            return refused
        start = time.perf_counter()
        with self._admitted():
            deadline = self._deadline(payload)
            async with self._scheduler.write(deadline):
                self._refresh_pressure_gauges()
                replayed = self._deduped(request_id)
                if replayed is not None:
                    return replayed
                record = {"op": "sub_untrack", "sub": sub_id}
                if request_id is not None:
                    record["req"] = request_id
                await self._run(self._wal_append, record)
                removed = self.subs.remove(sub_id)
                self._g_sub_active.set(len(self.subs))
                response = {"ok": True, "op": "sub_untrack", "sub": sub_id,
                            "removed": removed is not None,
                            "version": self.version}
                self._remember(request_id, response)
                self._note_durable_record()
            self._m_latency[("sub_untrack", "engine")].observe(
                time.perf_counter() - start)
            return response

    # ------------------------------------------------------------------
    # Inherited ops, shard-aware
    # ------------------------------------------------------------------
    async def _op_health(self, payload: dict[str, Any]) -> dict[str, Any]:
        response = await super()._op_health(payload)
        lo, hi = self._owned_lo, self._owned_hi
        response["shard"] = {
            "index": self.shard_index,
            "owned_size": self.owned_size,
            # JSON cannot carry infinities; edge shards report null.
            "owned": [None if lo == float("-inf") else lo,
                      None if hi == float("inf") else hi],
        }
        return response

    def _apply_insert(self, obj) -> None:
        super()._apply_insert(obj)
        if self._owns(obj.x):
            self.owned_size += 1

    def _apply_delete(self, obj) -> bool:
        deleted = super()._apply_delete(obj)
        if deleted and self._owns(obj.x):
            self.owned_size -= 1
        return deleted

    _HANDLERS = {
        **QueryServer._HANDLERS,
        "nwc_scatter": _op_nwc_scatter,
        "knwc_pool": _op_knwc_pool,
        "sub_track": _op_sub_track,
        "sub_untrack": _op_sub_untrack,
        "health": _op_health,
    }


def build_shard_server(
    manifest: ShardManifest,
    directory: str,
    index: int,
    config: ServeConfig | None = None,
    state_dir: str | None = None,
    durability: DurabilityConfig | None = None,
    scheme: Scheme = Scheme.NWC_STAR,
    execution: str = "columnar",
    metrics=None,
    tracer=None,
) -> ShardServer:
    """Construct a (possibly durable) worker for shard ``index``.

    With a ``state_dir`` the worker recovers checkpoint + WAL tail
    exactly like a single-engine durable server — each shard owns an
    independent WAL, so one shard's crash replays only its own updates.
    """
    if index < 0 or index >= manifest.shard_count:
        raise ValueError(
            f"shard index {index} out of range 0..{manifest.shard_count - 1}")
    durable = None
    if state_dir is not None:
        cfg = durability or DurabilityConfig(state_dir=state_dir)
        engine, durable = recover(
            cfg,
            lambda tree: make_shard_engine(
                manifest, directory, index, tree=tree, scheme=scheme,
                execution=execution, metrics=metrics, tracer=tracer,
            ),
            metrics=metrics,
        )
    else:
        engine = make_shard_engine(manifest, directory, index, scheme=scheme,
                                   execution=execution, metrics=metrics,
                                   tracer=tracer)
    return ShardServer(engine, manifest, index, config=config,
                       metrics=metrics, durable=durable)
