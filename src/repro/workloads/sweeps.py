"""Parameter sweeps used by the Section 5 experiments."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence

#: Paper defaults (Section 5): n = 8, window 8 x 8, grid cell 25.
DEFAULT_N = 8
DEFAULT_WINDOW = 8.0
DEFAULT_GRID_CELL = 25.0

#: The paper's sweep values.
GRID_SIZES = (25.0, 50.0, 100.0, 200.0, 400.0)            # Fig 9
GAUSSIAN_STDS = (2000.0, 1750.0, 1500.0, 1250.0, 1000.0)  # Fig 10
N_VALUES = (8, 16, 32, 64, 128)                           # Fig 11
WINDOW_SIZES = (8.0, 16.0, 32.0, 64.0, 128.0)             # Fig 12
K_VALUES = (2, 4, 6, 8, 10)                               # Fig 13
M_VALUES = (0, 1, 2, 4, 6)                                # Fig 14


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One experiment configuration.

    Attributes:
        n: Objects per window.
        length: Window length.
        width: Window width.
        grid_cell: Density-grid cell size (DEP).
        k: Groups requested (kNWC experiments; 1 otherwise).
        m: Allowed pairwise overlap (kNWC experiments).
    """

    n: int = DEFAULT_N
    length: float = DEFAULT_WINDOW
    width: float = DEFAULT_WINDOW
    grid_cell: float = DEFAULT_GRID_CELL
    k: int = 1
    m: int = 0

    def scaled_window(self, factor: float) -> "SweepPoint":
        """Scale the window (used when datasets are subsampled to keep
        the expected objects-per-window comparable)."""
        return replace(self, length=self.length * factor, width=self.width * factor)


def sweep_n(values: Sequence[int] = N_VALUES, **kwargs) -> Iterator[SweepPoint]:
    """Fig 11: vary the number of searched objects."""
    for n in values:
        yield SweepPoint(n=n, **kwargs)


def sweep_window(values: Sequence[float] = WINDOW_SIZES, **kwargs) -> Iterator[SweepPoint]:
    """Fig 12: vary the (square) window size."""
    for size in values:
        yield SweepPoint(length=size, width=size, **kwargs)


def sweep_grid(values: Sequence[float] = GRID_SIZES, **kwargs) -> Iterator[SweepPoint]:
    """Fig 9: vary the density-grid cell size."""
    for cell in values:
        yield SweepPoint(grid_cell=cell, **kwargs)


def sweep_k(values: Sequence[int] = K_VALUES, m: int = 2, **kwargs) -> Iterator[SweepPoint]:
    """Fig 13: vary k at fixed m."""
    for k in values:
        yield SweepPoint(k=k, m=m, **kwargs)


def sweep_m(values: Sequence[int] = M_VALUES, k: int = 4, **kwargs) -> Iterator[SweepPoint]:
    """Fig 14: vary m at fixed k."""
    for m in values:
        yield SweepPoint(k=k, m=m, **kwargs)
