"""Query workloads and the Section 5 parameter sweeps."""

from .queries import (
    DEFAULT_QUERY_COUNT,
    data_biased_query_points,
    uniform_query_points,
)
from .sweeps import (
    DEFAULT_GRID_CELL,
    DEFAULT_N,
    DEFAULT_WINDOW,
    GAUSSIAN_STDS,
    GRID_SIZES,
    K_VALUES,
    M_VALUES,
    N_VALUES,
    WINDOW_SIZES,
    SweepPoint,
    sweep_grid,
    sweep_k,
    sweep_m,
    sweep_n,
    sweep_window,
)

__all__ = [
    "DEFAULT_GRID_CELL",
    "DEFAULT_N",
    "DEFAULT_QUERY_COUNT",
    "DEFAULT_WINDOW",
    "GAUSSIAN_STDS",
    "GRID_SIZES",
    "K_VALUES",
    "M_VALUES",
    "N_VALUES",
    "WINDOW_SIZES",
    "SweepPoint",
    "data_biased_query_points",
    "sweep_grid",
    "sweep_k",
    "sweep_m",
    "sweep_n",
    "sweep_window",
    "uniform_query_points",
]
