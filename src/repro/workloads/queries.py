"""Query-location workloads.

The paper runs 25 queries per experiment and reports average I/O
(Section 5) without specifying how query locations are drawn.  Two
samplers are provided:

* :func:`uniform_query_points` — uniform over the data space;
* :func:`data_biased_query_points` — a random object plus Gaussian
  jitter, modelling a location-based-service user standing near the
  points of interest (the paper's motivating scenario).  This is the
  experiment harness default; empty-desert queries mostly measure how
  far the search must travel, which the uniform sampler still covers.
"""

from __future__ import annotations

import numpy as np

from ..datasets import Dataset
from ..geometry import Rect

#: Paper default: "We run 25 queries for each experiment".
DEFAULT_QUERY_COUNT = 25


def uniform_query_points(
    count: int, extent: Rect, seed: int = 0
) -> list[tuple[float, float]]:
    """``count`` locations uniform over ``extent``."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(extent.x1, extent.x2, count)
    ys = rng.uniform(extent.y1, extent.y2, count)
    return list(zip(xs.tolist(), ys.tolist()))


def data_biased_query_points(
    dataset: Dataset, count: int, seed: int = 0, jitter: float = 200.0
) -> list[tuple[float, float]]:
    """``count`` locations near random dataset objects.

    Args:
        dataset: Source of anchor objects.
        count: Number of query points.
        seed: RNG seed.
        jitter: Standard deviation of the Gaussian offset added to the
            anchor (clamped into the extent).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if len(dataset) == 0:
        raise ValueError("dataset is empty")
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(dataset.points), count)
    extent = dataset.extent
    out = []
    for idx in picks:
        anchor = dataset.points[int(idx)]
        x = float(np.clip(anchor.x + rng.normal(0.0, jitter), extent.x1, extent.x2))
        y = float(np.clip(anchor.y + rng.normal(0.0, jitter), extent.y1, extent.y2))
        out.append((x, y))
    return out
