"""Durable server state: checkpoint + WAL directory, recovery, dedupe.

One directory holds everything a server needs to survive ``kill -9``:

* ``wal.log`` — the :class:`~repro.storage.wal.WriteAheadLog` of every
  acknowledged update since the last checkpoint;
* ``checkpoint-<seq>.pages`` — an atomic :func:`~repro.index.save_tree`
  page file of the tree as of WAL sequence ``<seq>``;
* ``CURRENT`` — a small JSON pointer naming the authoritative
  checkpoint, its ``(seq, version)`` anchor and the recent request-id
  dedupe map.  It is replaced atomically (tmp + fsync + rename), so at
  every instant it names one *complete* checkpoint.

Checkpointing follows the LevelDB ``CURRENT``-pointer discipline, which
makes every crash window safe:

1. save the tree to ``checkpoint-<seq>.pages`` (atomic on its own);
2. atomically replace ``CURRENT`` to point at it;
3. compact the WAL down to records ``> seq`` and prune old checkpoints.

A crash after (1) leaves ``CURRENT`` on the old checkpoint and the full
WAL — recovery replays everything, the orphan file is garbage-collected
later.  A crash after (2) leaves stale records ``<= seq`` in the WAL —
replay skips them by sequence number.  A crash inside (3) leaves either
the old or the new WAL file, both consistent with ``CURRENT``.

:func:`recover` is the boot path: load the ``CURRENT`` checkpoint (or
start from the seed dataset when there is none), replay the WAL tail,
rebuild the dedupe map, and hand the server an engine whose answers are
bit-identical to one that applied exactly the logged updates in order.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core import NWCEngine
from ..index import load_tree
from ..storage.wal import (
    FSYNC_POLICIES,
    WalError,
    WriteAheadLog,
    replay_wal,
)
from ..sub import SubscriptionIndex, reconcile, subscription_from_record
from ..sub.runtime import evaluate_subscription

__all__ = [
    "DurabilityConfig",
    "DurableState",
    "RecoveryReport",
    "ServerState",
    "recover",
]

#: Default cap on remembered request ids (LRU-evicted beyond this).
DEFAULT_DEDUPE_ENTRIES = 10_000


@dataclass(frozen=True, slots=True)
class DurabilityConfig:
    """Durability tunables of one server.

    Attributes:
        state_dir: Directory holding WAL, checkpoints and ``CURRENT``.
        fsync: WAL fsync policy (``always`` | ``interval`` | ``never``).
        fsync_interval_s: Max fsync staleness under ``interval``.
        checkpoint_every: Auto-checkpoint after this many WAL records
            (0 disables auto-checkpointing; the ``checkpoint`` op always
            works).
        dedupe_entries: Request-id memory for idempotent retries.
    """

    state_dir: str
    fsync: str = "interval"
    fsync_interval_s: float = 0.05
    checkpoint_every: int = 0
    dedupe_entries: int = DEFAULT_DEDUPE_ENTRIES

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.dedupe_entries < 0:
            raise ValueError("dedupe_entries must be non-negative")


@dataclass(frozen=True, slots=True)
class _Current:
    """Decoded ``CURRENT`` pointer."""

    checkpoint: str
    seq: int
    version: int
    dedupe: dict[str, dict[str, Any]]
    subs: list[dict[str, Any]]


class ServerState:
    """Paths and pointer I/O of one durable state directory."""

    WAL_NAME = "wal.log"
    CURRENT_NAME = "CURRENT"

    def __init__(self, state_dir: str | os.PathLike[str]) -> None:
        self.dir = os.fspath(state_dir)
        os.makedirs(self.dir, exist_ok=True)

    @property
    def wal_path(self) -> str:
        return os.path.join(self.dir, self.WAL_NAME)

    @property
    def current_path(self) -> str:
        return os.path.join(self.dir, self.CURRENT_NAME)

    def checkpoint_path(self, seq: int) -> str:
        return os.path.join(self.dir, f"checkpoint-{seq:012d}.pages")

    # -- CURRENT pointer -----------------------------------------------
    def read_current(self) -> _Current | None:
        """The authoritative checkpoint pointer, or None before the
        first checkpoint."""
        try:
            with open(self.current_path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError) as exc:
            raise WalError(f"{self.current_path}: unreadable checkpoint "
                           f"pointer: {exc}") from exc
        try:
            current = _Current(
                checkpoint=str(raw["checkpoint"]), seq=int(raw["seq"]),
                version=int(raw["version"]),
                dedupe=dict(raw.get("dedupe", {})),
                subs=list(raw.get("subs", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WalError(f"{self.current_path}: malformed checkpoint "
                           f"pointer: {exc}") from exc
        path = os.path.join(self.dir, current.checkpoint)
        if not os.path.exists(path):
            raise WalError(f"{self.current_path} names missing checkpoint "
                           f"{current.checkpoint}")
        return current

    def write_current(self, checkpoint: str, seq: int, version: int,
                      dedupe: "OrderedDict[str, dict[str, Any]]",
                      subs: list[dict[str, Any]] | None = None) -> None:
        """Atomically repoint ``CURRENT`` (tmp + fsync + rename).

        ``subs`` is the live-subscription state captured at ``seq``
        (:meth:`repro.sub.SubscriptionIndex.to_state`) — recovery
        restores it before replaying the WAL tail, so standing queries
        and their revisions survive checkpoint compaction.
        """
        tmp = f"{self.current_path}.tmp.{os.getpid()}"
        payload = {"checkpoint": checkpoint, "seq": seq, "version": version,
                   "dedupe": dict(dedupe), "subs": list(subs or ())}
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"),
                          sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.current_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_dir(self.dir)

    def prune_checkpoints(self, keep: str) -> int:
        """Best-effort removal of superseded checkpoint files."""
        removed = 0
        for name in os.listdir(self.dir):
            if (name.startswith("checkpoint-") and name.endswith(".pages")
                    and name != keep):
                try:
                    os.unlink(os.path.join(self.dir, name))
                    removed += 1
                except OSError:
                    pass
        return removed


def _fsync_dir(directory: str) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass(slots=True)
class RecoveryReport:
    """What one boot-time recovery did."""

    checkpoint_seq: int = 0
    checkpoint_version: int = 0
    replayed: int = 0
    skipped: int = 0
    truncated_bytes: int = 0
    version: int = 0
    last_seq: int = 0
    wall_s: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "checkpoint_seq": self.checkpoint_seq,
            "checkpoint_version": self.checkpoint_version,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "truncated_bytes": self.truncated_bytes,
            "version": self.version,
            "last_seq": self.last_seq,
            "wall_s": round(self.wall_s, 4),
        }


@dataclass(slots=True)
class DurableState:
    """Everything the server holds for durability at runtime."""

    config: DurabilityConfig
    state: ServerState
    wal: WriteAheadLog
    dedupe: "OrderedDict[str, dict[str, Any]]"
    recovery: RecoveryReport
    records_since_checkpoint: int = 0
    subs: SubscriptionIndex = field(default_factory=SubscriptionIndex)

    def remember(self, request_id: str, response: dict[str, Any]) -> None:
        """LRU-record an acknowledged update for idempotent retries."""
        self.dedupe[request_id] = response
        self.dedupe.move_to_end(request_id)
        while len(self.dedupe) > self.config.dedupe_entries:
            self.dedupe.popitem(last=False)

    def close(self) -> None:
        self.wal.close()


def apply_record(engine: NWCEngine, version: int, record: dict[str, Any],
                 subs: SubscriptionIndex | None = None
                 ) -> tuple[int, dict[str, Any]]:
    """Apply one WAL record to ``engine`` at dataset ``version``.

    Returns ``(new_version, ack_response)`` where the response is byte-
    identical to the one the live server sent (or would have sent) when
    it appended the record — replay therefore reconstructs the dedupe
    map exactly.

    With a :class:`~repro.sub.SubscriptionIndex`, subscription records
    (``subscribe``/``unsubscribe``/``sub_track``/``sub_untrack``)
    restore standing queries, and every replayed update runs the same
    :func:`~repro.sub.reconcile` step the live server ran — the
    re-evaluations are deterministic, so revisions *continue* across a
    crash instead of forking, and worker acks regain their
    affected-sentinel ``subs`` hints.
    """
    from ..geometry import PointObject

    op = record.get("op")
    if op in ("subscribe", "sub_track"):
        sub = subscription_from_record(record)
        response: dict[str, Any] = {"ok": True, "op": op,
                                    "sub": sub.sub_id, "version": version}
        if subs is not None:
            if op == "subscribe":
                sub.result, sub.insert_radius, sub.delete_radius = \
                    evaluate_subscription(engine, sub)
                sub.revision = 1
                sub.version = version
                response["kind"] = sub.kind
                response["revision"] = 1
                response["result"] = sub.result
            subs.add(sub)
        return version, response
    if op in ("unsubscribe", "sub_untrack"):
        sub_id = str(record["sub"])
        removed = subs.remove(sub_id) if subs is not None else None
        response = {"ok": True, "op": op, "sub": sub_id,
                    "removed": removed is not None, "version": version}
        return version, response
    obj = PointObject(int(record["oid"]), float(record["x"]),
                      float(record["y"]))
    if op == "insert":
        engine.insert(obj)
        version += 1
        response = {"ok": True, "op": "insert", "version": version,
                    "size": engine.tree.size}
        if subs is not None and len(subs):
            _, hints, _ = reconcile(subs, engine, "insert", obj.x, obj.y,
                                    engine.tree.size, version)
            if hints:
                response["subs"] = hints
        return version, response
    if op == "delete":
        deleted = engine.delete(obj)
        if deleted:
            version += 1
        response = {"ok": True, "op": "delete", "version": version,
                    "deleted": deleted, "size": engine.tree.size}
        if deleted and subs is not None and len(subs):
            _, hints, _ = reconcile(subs, engine, "delete", obj.x, obj.y,
                                    engine.tree.size, version)
            if hints:
                response["subs"] = hints
        return version, response
    raise WalError(f"WAL record with unknown op {record.get('op')!r}")


def recover(
    config: DurabilityConfig,
    make_engine: Callable[[object | None], NWCEngine],
    metrics=None,
) -> tuple[NWCEngine, DurableState]:
    """Boot-time recovery: checkpoint + WAL tail → live engine.

    Args:
        config: Durability settings (names the state directory).
        make_engine: Factory building the server's engine.  Called with
            the checkpoint's loaded :class:`~repro.index.RStarTree`, or
            with ``None`` when no checkpoint exists yet (first boot) —
            then it must build the engine over the seed dataset.
        metrics: Optional registry; the WAL and recovery gauges hang off
            it.

    Returns:
        ``(engine, durable_state)`` ready to hand to the server.

    Raises:
        WalError: Unrecoverable log damage (body corruption, missing
            checkpoint file, anchors that disagree).
        StorageError: A checkpoint page file that fails its checks.
    """
    started = time.perf_counter()
    state = ServerState(config.state_dir)
    current = state.read_current()
    report = RecoveryReport()
    if current is not None:
        tree = load_tree(os.path.join(state.dir, current.checkpoint))
        engine = make_engine(tree)
        report.checkpoint_seq = current.seq
        report.checkpoint_version = current.version
        version = current.version
        base_seq = current.seq
        dedupe: OrderedDict[str, dict[str, Any]] = OrderedDict(current.dedupe)
        subs = SubscriptionIndex.from_state(current.subs)
    else:
        engine = make_engine(None)
        version = 0
        base_seq = 0
        dedupe = OrderedDict()
        subs = SubscriptionIndex()

    if os.path.exists(state.wal_path):
        replay = replay_wal(state.wal_path)
        if replay.header.base_seq > base_seq:
            raise WalError(
                f"{state.wal_path}: log is anchored at seq "
                f"{replay.header.base_seq} but the checkpoint covers only "
                f"{base_seq} — records are missing")
        report.truncated_bytes = replay.truncated_bytes
        for seq, record in replay.records:
            if seq <= base_seq:
                report.skipped += 1
                continue
            version, response = apply_record(engine, version, record, subs)
            request_id = record.get("req")
            if isinstance(request_id, str):
                dedupe[request_id] = response
            report.replayed += 1
    if report.replayed:
        engine._refresh_structures()
    # Opening the log replays it once more internally, truncating the
    # torn tail for good and positioning the append cursor.
    wal = WriteAheadLog(
        state.wal_path, fsync=config.fsync,
        fsync_interval_s=config.fsync_interval_s,
        base_seq=base_seq, base_version=version, metrics=metrics,
    )
    while len(dedupe) > config.dedupe_entries:
        dedupe.popitem(last=False)
    report.version = version
    report.last_seq = wal.last_seq
    report.wall_s = time.perf_counter() - started
    if metrics is not None:
        metrics.gauge("serve_recovery_replayed",
                      "WAL records replayed at last boot").set(report.replayed)
        metrics.gauge("serve_recovery_truncated_bytes",
                      "Torn WAL tail bytes dropped at last boot").set(
                          report.truncated_bytes)
        metrics.gauge("serve_recovery_seconds",
                      "Wall time of last boot recovery").set(
                          round(report.wall_s, 6))
    durable = DurableState(config=config, state=state, wal=wal,
                           dedupe=dedupe, recovery=report,
                           records_since_checkpoint=wal.record_count,
                           subs=subs)
    return engine, durable
