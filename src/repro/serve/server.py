"""Concurrent NWC/kNWC query server.

One :class:`QueryServer` owns one :class:`~repro.core.engine.NWCEngine`
and serves it over TCP (newline-delimited JSON, see
:mod:`repro.serve.protocol`).  Three mechanisms make a single
in-process engine safe and predictable under concurrent clients:

* **Single-writer / many-reader scheduling** —
  :class:`ReadWriteScheduler` is a FIFO-fair asyncio lock: queries and
  snapshots run concurrently (up to ``max_inflight``, each on an
  executor thread; the engine's query paths only read the index), while
  ``insert``/``delete`` run exclusively.  FIFO ordering means a waiting
  writer blocks later readers, so writers cannot starve.  DEP/IWP
  structure rebuilds are forced *inside* the write critical section, so
  readers never pay (or race on) a lazy rebuild.
* **Admission control** — at most ``max_inflight + max_queue`` requests
  may be in the system; beyond that the server answers ``overloaded``
  immediately instead of queueing unboundedly.  Each request also
  carries a deadline (client-supplied ``deadline_ms`` or the server
  default); a request still waiting for the scheduler when its deadline
  passes is answered ``deadline_exceeded`` without touching the engine.
* **Update-aware result caching** — answers are cached per full query
  description and dataset version (:mod:`repro.serve.cache`); updates
  carry entries forward or invalidate them by the shield-radius rule,
  so a cache hit is always bit-identical to recomputing at the current
  version.

A fourth mechanism makes acknowledgements *durable* when the server is
built over a :class:`~repro.serve.durability.DurableState`:

* **Write-ahead logging** — inside the exclusive write slot, every
  ``insert``/``delete`` is appended to the WAL *before* it is applied
  (and long before the ack leaves the server); on boot,
  :func:`~repro.serve.durability.recover` replays the log tail over the
  latest checkpoint, so a ``kill -9`` loses nothing that was
  acknowledged.  Updates carrying a client request id (``req``) are
  deduplicated against the WAL-backed id map, making client retries
  idempotent.  The ``checkpoint`` op (and the ``checkpoint_every``
  auto-trigger) saves the tree, repoints ``CURRENT`` and compacts the
  log.

On SIGINT/SIGTERM the server drains: it stops accepting connections,
answers new requests with ``draining``, waits up to
``drain_timeout_s`` for in-flight work, then closes (syncing the WAL).
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import dataclasses
import os
import signal
import threading
import time
import uuid
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from ..core import NWCEngine, NWCError
from ..index import save_tree
from ..obs.context import TraceContext
from ..obs.fleet import registry_state
from ..obs.metrics import MetricsRegistry
from ..obs.slo import SLORecorder, default_objectives
from ..obs.trace import QueryTracer, span_to_dict
from ..storage import StorageError
from ..storage.wal import crash_point
from ..sub import Subscription, SubscriptionIndex, reconcile
from ..sub.runtime import evaluate_subscription
from . import protocol
from .cache import DEFAULT_CACHE_ENTRIES, ResultCache
from .durability import DEFAULT_DEDUPE_ENTRIES, DurableState
from .protocol import ProtocolError, error_response

__all__ = ["DeadlineExceeded", "LineProtocolServer", "ReadWriteScheduler",
           "ServeConfig", "QueryServer", "ServerThread", "ServingThread"]


class DeadlineExceeded(Exception):
    """A request's deadline passed while it waited for the scheduler."""


#: The connection a handler is serving, so ``subscribe`` can attach the
#: push target without threading it through every handler signature.
#: Task-local: each connection runs in its own asyncio task.
_CURRENT_CONN: contextvars.ContextVar["_Connection | None"] = \
    contextvars.ContextVar("repro_serve_conn", default=None)

#: Outbound frames a connection may have queued before it counts as a
#: slow consumer and is disconnected (subscriptions stay registered —
#: the client resubscribes and resumes at the current revision).
CONN_QUEUE_LIMIT = 1024


class _Connection:
    """One client connection's outbound side: a FIFO frame queue
    drained by a dedicated sender task.

    Request responses and push notifications share the queue, so their
    relative order on the wire is exactly their enqueue order — and
    because notifications are enqueued inside the exclusive write slot,
    a subscriber can never observe a notification reordered against an
    ack it raced with.  ``send`` never blocks the caller: a consumer
    whose queue overflows (:data:`CONN_QUEUE_LIMIT`) is marked closed
    and dropped instead of back-pressuring the write path.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._queue: asyncio.Queue[dict[str, Any] | None] = \
            asyncio.Queue(maxsize=CONN_QUEUE_LIMIT)
        self.closed = False
        #: Ids of subscriptions attached to this connection.
        self.subs: set[str] = set()
        self._sender = asyncio.get_running_loop().create_task(self._drain())

    def send(self, frame: dict[str, Any]) -> bool:
        """Enqueue one outbound frame; ``False`` when the connection is
        closed or too far behind (the frame is then dropped)."""
        if self.closed:
            return False
        try:
            self._queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.closed = True
            return False
        return True

    async def _drain(self) -> None:
        while True:
            frame = await self._queue.get()
            if frame is None:
                break
            try:
                self._writer.write(protocol.encode_line(frame))
                await self._writer.drain()
            except (ConnectionError, OSError):
                self.closed = True
                break

    async def aclose(self) -> None:
        """Flush queued frames (up to a close sentinel) and close."""
        self.closed = True
        if not self._sender.done():
            try:
                self._queue.put_nowait(None)
            except asyncio.QueueFull:
                self._sender.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._sender
        with contextlib.suppress(ConnectionError, OSError):
            self._writer.close()
            with contextlib.suppress(asyncio.CancelledError):
                await self._writer.wait_closed()


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Tunables of one server instance.

    Attributes:
        host: Bind address.
        port: Bind port (0 = ephemeral; see ``QueryServer.port``).
        max_inflight: Concurrent engine operations (reader slots and
            executor threads).
        max_queue: Requests allowed to wait beyond ``max_inflight``
            before admission control answers ``overloaded``.
        deadline_s: Default per-request deadline (overridable per
            request via ``deadline_ms``).
        cache_entries: Result-cache capacity (0 disables caching).
        cache_ttl_s: Result-cache TTL (None = no expiry).
        drain_timeout_s: Grace period for in-flight requests at
            shutdown.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 4
    max_queue: int = 64
    deadline_s: float = 10.0
    cache_entries: int = DEFAULT_CACHE_ENTRIES
    cache_ttl_s: float | None = None
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")


class ReadWriteScheduler:
    """FIFO-fair single-writer / many-reader asyncio scheduler.

    Waiters are granted strictly in arrival order: readers are admitted
    while no writer is active or queued ahead of them (up to
    ``max_readers`` at once); a writer waits for exclusive access and,
    sitting at the queue head, holds back every later arrival.  This is
    the textbook writer-preference discipline that keeps a stream of
    cheap reads from starving updates.

    ``acquire`` takes an optional absolute deadline (event-loop time);
    expiry raises :class:`DeadlineExceeded` and leaves the queue clean.
    """

    def __init__(self, max_readers: int) -> None:
        if max_readers < 1:
            raise ValueError("max_readers must be at least 1")
        self._max_readers = max_readers
        self._readers = 0
        self._writer_active = False
        self._waiters: deque[tuple[asyncio.Future, bool]] = deque()

    @property
    def active_readers(self) -> int:
        return self._readers

    @property
    def writer_active(self) -> bool:
        return self._writer_active

    @property
    def waiting(self) -> int:
        return sum(1 for fut, _ in self._waiters if not fut.done())

    def _grant(self) -> None:
        while self._waiters:
            fut, is_writer = self._waiters[0]
            if fut.done():  # cancelled or already granted; sweep it
                self._waiters.popleft()
                continue
            if is_writer:
                if not self._writer_active and self._readers == 0:
                    self._writer_active = True
                    self._waiters.popleft()
                    fut.set_result(None)
                break  # a queued writer holds back everything behind it
            if self._writer_active or self._readers >= self._max_readers:
                break
            self._readers += 1
            self._waiters.popleft()
            fut.set_result(None)

    async def acquire(self, is_writer: bool, deadline: float | None = None) -> None:
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._waiters.append((fut, is_writer))
        self._grant()
        if fut.done():
            return
        timeout = None if deadline is None else max(0.0, deadline - loop.time())
        try:
            await asyncio.wait_for(fut, timeout)
        except asyncio.TimeoutError:
            if fut.done() and not fut.cancelled():
                # Granted in the same tick the timeout fired: give the
                # slot back instead of leaking it.
                self.release(is_writer)
            else:
                self._grant()  # sweep our dead waiter, wake the next
            raise DeadlineExceeded from None
        except asyncio.CancelledError:
            if fut.done() and not fut.cancelled():
                self.release(is_writer)
            else:
                self._grant()
            raise

    def release(self, is_writer: bool) -> None:
        if is_writer:
            self._writer_active = False
        else:
            self._readers -= 1
        self._grant()

    @contextlib.asynccontextmanager
    async def read(self, deadline: float | None = None):
        await self.acquire(False, deadline)
        try:
            yield
        finally:
            self.release(False)

    @contextlib.asynccontextmanager
    async def write(self, deadline: float | None = None):
        await self.acquire(True, deadline)
        try:
            yield
        finally:
            self.release(True)


class LineProtocolServer:
    """Transport, dispatch and admission shared by every NDJSON server.

    Owns everything that is *not* about a local engine: the asyncio
    TCP listener and per-connection line loop, handler dispatch with
    error mapping and request-id echo, admission control + deadlines,
    the FIFO read/write scheduler, the blocking-work executor, the
    request-id dedupe map and the request/latency metric families.

    Subclasses — :class:`QueryServer` (one engine),
    :class:`~repro.shard.worker.ShardServer` (one shard) and
    :class:`~repro.shard.coordinator.ShardCoordinator` (no engine at
    all) — contribute a ``_HANDLERS`` table and may extend ``_OPS`` /
    ``_OUTCOMES`` so the metric families cover their extra ops.
    """

    _OPS: tuple[str, ...] = (
        "nwc", "knwc", "insert", "delete", "snapshot", "checkpoint",
        "health", "metrics", "subscribe", "unsubscribe", "unknown",
    )
    _OUTCOMES: tuple[str, ...] = (
        "ok", "bad_request", "overloaded", "deadline_exceeded",
        "draining", "internal",
    )
    _LATENCY_OPS: tuple[str, ...] = (
        "nwc", "knwc", "insert", "delete", "snapshot", "checkpoint",
        "subscribe", "unsubscribe",
    )
    _HANDLERS: dict[str, Callable[["LineProtocolServer", dict], Awaitable[dict]]] = {}

    def __init__(self, config: ServeConfig | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache: ResultCache | None = None
        self.durable: DurableState | None = None
        self.version = 0
        self._dedupe: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._dedupe_cap = DEFAULT_DEDUPE_ENTRIES
        self._checkpoint_lock = asyncio.Lock()
        self._auto_checkpoint_task: asyncio.Task | None = None
        self._scheduler = ReadWriteScheduler(self.config.max_inflight)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_inflight,
            thread_name_prefix="repro-serve",
        )
        self._active = 0
        self._draining = False
        self._stop_event = asyncio.Event()
        self._started = time.monotonic()
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        m = self.metrics
        self._m_requests = {
            (op, outcome): m.counter(
                "serve_requests_total", "Requests by op and outcome",
                labels={"op": op, "outcome": outcome},
            )
            for op in type(self)._OPS
            for outcome in type(self)._OUTCOMES
        }
        self._m_latency = {
            (op, source): m.histogram(
                "serve_request_seconds", "Server-side request latency",
                labels={"op": op, "source": source},
            )
            for op in type(self)._LATENCY_OPS
            for source in ("engine", "cache")
        }
        self._m_deduped = m.counter(
            "serve_deduped_total",
            "Update requests answered from the request-id dedupe map")
        self._m_checkpoints = m.counter(
            "serve_checkpoints_total", "Checkpoint-and-compact cycles")
        self._g_queue = m.gauge("serve_queue_depth",
                                "Requests waiting for an engine slot")
        self._g_inflight = m.gauge("serve_inflight",
                                   "Requests holding an engine slot")
        self._g_connections = m.gauge("serve_connections", "Open connections")
        self._g_version = m.gauge("serve_dataset_version",
                                  "Monotone dataset version")
        self._g_cache_entries = m.gauge("serve_cache_entries",
                                        "Live result-cache entries")
        self._g_sub_active = m.gauge("sub_active", "Live subscriptions")
        self._m_sub_notify = m.counter(
            "sub_notifications_total", "Subscription notifications pushed")
        self._m_sub_dropped = m.counter(
            "sub_dropped_total",
            "Notifications not delivered (detached or slow subscriber)")
        self._m_sub_reevals = m.counter(
            "sub_reevals_total", "Standing queries re-evaluated by updates")
        self._m_sub_hints = m.counter(
            "sub_hints_total",
            "Affected-subscription hints emitted to the coordinator")
        self._h_sub_reeval = m.histogram(
            "sub_reeval_seconds",
            "Subscription re-evaluation time per affecting update")
        self.slo = SLORecorder(
            m, default_objectives(type(self)._LATENCY_OPS))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )

    async def serve_forever(self, handle_signals: bool = True) -> None:
        """Run until :meth:`shutdown` (or SIGINT/SIGTERM) then drain."""
        if self._server is None:
            await self.start()
        if handle_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(sig, self._stop_event.set)
        await self._stop_event.wait()
        await self.drain()

    def shutdown(self) -> None:
        """Ask :meth:`serve_forever` to drain and return (thread-safe
        only via ``loop.call_soon_threadsafe``)."""
        self._stop_event.set()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight work."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [t for t in self._conn_tasks if not t.done()]
        if pending:
            done, still = await asyncio.wait(
                pending, timeout=self.config.drain_timeout_s
            )
            for task in still:
                task.cancel()
            if still:
                await asyncio.gather(*still, return_exceptions=True)
        if self._auto_checkpoint_task is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._auto_checkpoint_task
        self._executor.shutdown(wait=False)
        if self.durable is not None:
            self.durable.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        conn = _Connection(writer)
        token = _CURRENT_CONN.set(conn)
        self._g_connections.inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionError:
                    break
                except ValueError:  # line longer than the stream limit
                    conn.send(error_response("bad_request",
                                             "request too large"))
                    break
                if not line or conn.closed:
                    break
                response = await self._handle_line(line)
                if not conn.send(response):
                    break
        finally:
            _CURRENT_CONN.reset(token)
            self._g_connections.dec()
            self._detach_connection(conn)
            with contextlib.suppress(asyncio.CancelledError):
                await conn.aclose()

    def _detach_connection(self, conn: "_Connection") -> None:
        """Unhook a closing connection from the subscriptions attached
        to it (the subscriptions themselves stay registered — standing
        queries outlive connections; overridden where a sub registry
        exists)."""

    def _push_notifications(self, changed: list[Subscription]) -> None:
        """Enqueue one ``notify`` frame per changed subscription on its
        subscriber's connection.  Called inside the exclusive write
        slot, so frames land on each connection's queue in dataset-
        version order.  Detached (or slow, see :class:`_Connection`)
        subscribers only cost a counter — the subscription stays
        current and the client resumes at the live revision when it
        resubscribes."""
        for sub in changed:
            frame = protocol.notify_frame(sub.sub_id, sub.kind,
                                          sub.revision, sub.version,
                                          sub.result)
            conn = sub.conn
            if conn is not None and conn.send(frame):
                self._m_sub_notify.inc()
            else:
                if conn is not None:  # overflowed: detach for good
                    conn.subs.discard(sub.sub_id)
                    sub.conn = None
                self._m_sub_dropped.inc()

    def _attach_subscription(self, sub: Subscription) -> None:
        """Point a subscription's push target at the connection whose
        request is being handled (re-attach steals from a previous
        connection: last subscriber wins)."""
        conn = _CURRENT_CONN.get()
        if conn is None or conn.closed:
            return
        previous = sub.conn
        if previous is not None and previous is not conn:
            previous.subs.discard(sub.sub_id)
        sub.conn = conn
        conn.subs.add(sub.sub_id)

    async def _handle_line(self, line: bytes) -> dict[str, Any]:
        try:
            payload = protocol.decode_line(line)
        except ProtocolError as exc:
            self._m_requests[("unknown", "bad_request")].inc()
            return error_response("bad_request", str(exc))
        request_id = payload.get("id")
        op = payload.get("op")
        handler = self._HANDLERS.get(op)
        if handler is None:
            self._m_requests[("unknown", "bad_request")].inc()
            return error_response("bad_request", f"unknown op {op!r}", request_id)
        start = time.perf_counter()
        try:
            response = await handler(self, payload)
            outcome = "ok" if response.get("ok") else response["error"]["code"]
        except ProtocolError as exc:
            response, outcome = error_response("bad_request", str(exc)), "bad_request"
        except DeadlineExceeded:
            response, outcome = error_response(
                "deadline_exceeded", "deadline passed before execution"
            ), "deadline_exceeded"
        except (NWCError, StorageError, ValueError, OSError) as exc:
            response, outcome = error_response(
                "internal", f"{type(exc).__name__}: {exc}"
            ), "internal"
        self._observe_request(op, outcome, time.perf_counter() - start)
        if request_id is not None:
            response["id"] = request_id
        return response

    def _observe_request(self, op: str, outcome: str, seconds: float) -> None:
        """The single request-accounting seam: outcome counter + SLO.
        One override point covers plain servers, shard workers and the
        coordinator alike (and the bench overhead guard shadows it)."""
        self._m_requests[(op, outcome)].inc()
        self.slo.record(op, seconds, error=(outcome != "ok"))

    def _trace_context(self, payload: dict[str, Any]) -> TraceContext | None:
        """The request's distributed-trace context, if any."""
        return protocol.parse_trace(payload)

    # ------------------------------------------------------------------
    # Admission + deadlines
    # ------------------------------------------------------------------
    def _deadline(self, payload: dict[str, Any]) -> float:
        raw = payload.get("deadline_ms")
        seconds = self.config.deadline_s
        if raw is not None:
            if not isinstance(raw, (int, float)) or isinstance(raw, bool) or raw <= 0:
                raise ProtocolError("deadline_ms must be a positive number")
            seconds = float(raw) / 1000.0
        return asyncio.get_running_loop().time() + seconds

    @contextlib.contextmanager
    def _admitted(self):
        """Admission-control slot; raises an ``overloaded`` response via
        its caller when the system is full."""
        self._active += 1
        self._refresh_pressure_gauges()
        try:
            yield
        finally:
            self._active -= 1
            self._refresh_pressure_gauges()

    def _refresh_pressure_gauges(self) -> None:
        inflight = self._scheduler.active_readers + (
            1 if self._scheduler.writer_active else 0
        )
        self._g_inflight.set(inflight)
        self._g_queue.set(max(0, self._active - inflight))

    def _check_admission(self) -> dict[str, Any] | None:
        if self._draining:
            return error_response("draining", "server is shutting down")
        limit = self.config.max_inflight + self.config.max_queue
        if self._active >= limit:
            return error_response(
                "overloaded",
                f"{self._active} requests in flight (limit {limit})",
            )
        return None

    async def _run(self, fn: Callable, *args) -> Any:
        """Run blocking engine work on the executor."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    # ------------------------------------------------------------------
    # Request-id dedupe (idempotent update retries)
    # ------------------------------------------------------------------
    def _deduped(self, request_id: str | None) -> dict[str, Any] | None:
        """The remembered ack of an already-applied request id, if any."""
        if request_id is None:
            return None
        stored = self._dedupe.get(request_id)
        if stored is None:
            return None
        self._dedupe.move_to_end(request_id)
        self._m_deduped.inc()
        # A copy: _handle_line stamps the connection's correlation id
        # onto the response, which must not leak into the stored ack.
        return dict(stored) | {"deduped": True}

    def _remember(self, request_id: str | None,
                  response: dict[str, Any]) -> None:
        """LRU-record an acknowledged update for idempotent retries."""
        if request_id is None:
            return
        self._dedupe[request_id] = dict(response)
        self._dedupe.move_to_end(request_id)
        while len(self._dedupe) > self._dedupe_cap:
            self._dedupe.popitem(last=False)

    # ------------------------------------------------------------------
    # Generic ops
    # ------------------------------------------------------------------
    async def _op_metrics(self, payload: dict[str, Any]) -> dict[str, Any]:
        scope = payload.get("scope", "local")
        if scope != "local":
            raise ProtocolError(
                f"metrics scope {scope!r} is not served here — 'fleet' "
                "requires a shard coordinator")
        self._refresh_pressure_gauges()
        self._g_version.set(self.version)
        if self.cache is not None:
            self._g_cache_entries.set(len(self.cache))
        fmt = payload.get("format", "json")
        if fmt == "prometheus":
            return {"ok": True, "op": "metrics", "format": fmt,
                    "text": self.metrics.dump_metrics()}
        if fmt == "json":
            return {"ok": True, "op": "metrics", "format": fmt,
                    "metrics": self.metrics.to_dict()}
        if fmt == "state":
            # The lossless structural form fleet aggregation merges
            # (to_dict() summarizes histograms, which cannot be merged).
            return {"ok": True, "op": "metrics", "format": fmt,
                    "state": registry_state(self.metrics)}
        raise ProtocolError(f"unknown metrics format {fmt!r}")

    # ------------------------------------------------------------------
    # Traced engine execution
    # ------------------------------------------------------------------
    def _trace_engine_call(self, run: Callable) -> tuple[Any, Any, int]:
        """Run ``run()`` with a per-request tracer on the engine
        (executor thread).  The caller must hold a slot that makes the
        engine's IOStats delta attributable to this call alone; the
        tracer swap is restored even when the engine raises."""
        tracer = QueryTracer()
        engine = self.engine  # type: ignore[attr-defined]
        previous = engine.tracer
        engine.tracer = tracer
        try:
            result = run()
        finally:
            engine.tracer = previous
        return result, tracer.last, tracer.dropped_spans

    @staticmethod
    def _trace_envelope(ctx: TraceContext, root, dropped: int) -> dict[str, Any]:
        """The response ``trace`` field: the recorded subtree, parented
        at the caller's span id."""
        return {
            "trace_id": ctx.trace_id,
            "parent": ctx.span_id,
            "span": span_to_dict(root) if root is not None else None,
            "dropped_spans": dropped,
        }


class QueryServer(LineProtocolServer):
    """The serving layer around one engine; see the module docstring."""

    def __init__(
        self,
        engine: NWCEngine,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        durable: DurableState | None = None,
    ) -> None:
        """Args:
            engine: The engine to serve.  The server takes ownership:
                nothing else may mutate the engine (or its tree) while
                the server runs.  Build it with ``metrics=None`` — the
                serve layer records its own metrics from the event-loop
                thread, which keeps recording race-free.
            config: Server tunables (defaults: :class:`ServeConfig`).
            metrics: Registry backing the ``metrics`` op; created on
                demand otherwise.
            durable: WAL-backed durable state from
                :func:`~repro.serve.durability.recover`; ``None`` serves
                purely in-memory (acks do not survive a crash).  When
                given, ``engine`` must be the engine that same
                ``recover`` call rebuilt.
        """
        super().__init__(config, metrics)
        self.engine = engine
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            ttl_s=self.config.cache_ttl_s,
            metrics=self.metrics,
        )
        self.durable = durable
        if durable is not None:
            self.version = durable.recovery.version
            self._dedupe = durable.dedupe
            self._dedupe_cap = durable.config.dedupe_entries
        # Standing queries: recovered alongside the engine on durable
        # servers (revision continuity across kill -9), fresh otherwise.
        self.subs: SubscriptionIndex = (
            durable.subs if durable is not None else SubscriptionIndex())
        self._g_sub_active.set(len(self.subs))
        self._flags_key = (
            self.engine.flags.srr, self.engine.flags.dip,
            self.engine.flags.dep, self.engine.flags.iwp,
            self.engine.execution,
        )

    # ------------------------------------------------------------------
    # Query ops
    # ------------------------------------------------------------------
    async def _op_nwc(self, payload: dict[str, Any]) -> dict[str, Any]:
        query = protocol.parse_nwc(payload)
        key = ("nwc", query.qx, query.qy, query.length, query.width,
               query.n, query.measure.value, self._flags_key)
        return await self._answer_query(
            payload, "nwc", key,
            run=lambda: self.engine.nwc(query),
            serialize=protocol.serialize_nwc,
            radii=lambda result: protocol.shield_radii_nwc(query, result),
            n=query.n, qx=query.qx, qy=query.qy,
        )

    async def _op_knwc(self, payload: dict[str, Any]) -> dict[str, Any]:
        query, maintenance = protocol.parse_knwc(payload)
        base = query.base
        key = ("knwc", base.qx, base.qy, base.length, base.width, base.n,
               base.measure.value, query.k, query.m, maintenance,
               self._flags_key)
        return await self._answer_query(
            payload, "knwc", key,
            run=lambda: self.engine.knwc(query, maintenance=maintenance),
            serialize=protocol.serialize_knwc,
            radii=lambda result: protocol.shield_radii_knwc(query, result),
            n=base.n, qx=base.qx, qy=base.qy,
        )

    async def _answer_query(self, payload, op, key, run, serialize,
                            radii, n, qx, qy) -> dict[str, Any]:
        ctx = self._trace_context(payload)
        traced = ctx is not None and ctx.sampled
        refused = self._check_admission()
        if refused is not None:
            return refused
        start = time.perf_counter()
        with self._admitted():
            if not traced:
                cached = self.cache.get(key, self.version)
                self._g_cache_entries.set(len(self.cache))
                if cached is not None:
                    self._m_latency[(op, "cache")].observe(
                        time.perf_counter() - start)
                    return {"ok": True, "op": op, "version": self.version,
                            "cached": True, "result": cached}
            deadline = self._deadline(payload)
            if traced:
                # Exclusive slot: the engine's IOStats are process-global,
                # so nothing else may touch the engine while the trace's
                # I/O deltas are being attributed.  The query itself is a
                # pure read — the answer is bit-identical either way —
                # and the cache is bypassed so the trace always shows a
                # real engine run.
                async with self._scheduler.write(deadline):
                    self._refresh_pressure_gauges()
                    result, root, dropped = await self._run(
                        self._trace_engine_call, run)
                    version = self.version
            else:
                async with self._scheduler.read(deadline):
                    self._refresh_pressure_gauges()
                    result = await self._run(run)
                    version = self.version  # stable while any reader runs
            answer = serialize(result)
            if not traced:
                insert_radius, delete_radius = radii(result)
                self.cache.put(key, version, answer, qx, qy, n,
                               insert_radius, delete_radius)
                self._g_cache_entries.set(len(self.cache))
            self._m_latency[(op, "engine")].observe(time.perf_counter() - start)
            response = {"ok": True, "op": op, "version": version,
                        "cached": False, "result": answer,
                        "stats": {"node_accesses": result.node_accesses}}
            if traced:
                response["trace"] = self._trace_envelope(ctx, root, dropped)
            return response

    # ------------------------------------------------------------------
    # Update ops
    # ------------------------------------------------------------------
    def _wal_append(self, record: dict[str, Any]) -> None:
        """Blocking WAL append (executor); no-op on in-memory servers."""
        if self.durable is not None:
            self.durable.wal.append(record)

    async def _op_insert(self, payload: dict[str, Any]) -> dict[str, Any]:
        obj = protocol.parse_point(payload)
        request_id = protocol.parse_request_id(payload)
        refused = self._check_admission()
        if refused is not None:
            return refused
        start = time.perf_counter()
        with self._admitted():
            deadline = self._deadline(payload)
            async with self._scheduler.write(deadline):
                self._refresh_pressure_gauges()
                replayed = self._deduped(request_id)
                if replayed is not None:
                    return replayed
                record = {"op": "insert", "oid": obj.oid,
                          "x": obj.x, "y": obj.y}
                if request_id is not None:
                    record["req"] = request_id
                # Durability contract: the record is on disk (per fsync
                # policy) before the engine changes, and long before the
                # ack leaves the server.
                await self._run(self._wal_append, record)
                await self._run(self._apply_insert, obj)
                self.version += 1
                self.cache.note_insert(obj.x, obj.y, self.version)
                changed, hints = await self._reconcile_subs(
                    "insert", obj.x, obj.y)
                response = {"ok": True, "op": "insert",
                            "version": self.version,
                            "size": self.engine.tree.size}
                if hints:
                    response["subs"] = hints
                self._remember(request_id, response)
                self._note_durable_record()
                self._push_notifications(changed)
            self._g_version.set(self.version)
            self._g_cache_entries.set(len(self.cache))
            self._m_latency[("insert", "engine")].observe(
                time.perf_counter() - start)
            crash_point("before_ack")
            return response

    async def _op_delete(self, payload: dict[str, Any]) -> dict[str, Any]:
        obj = protocol.parse_point(payload)
        request_id = protocol.parse_request_id(payload)
        refused = self._check_admission()
        if refused is not None:
            return refused
        start = time.perf_counter()
        with self._admitted():
            deadline = self._deadline(payload)
            async with self._scheduler.write(deadline):
                self._refresh_pressure_gauges()
                replayed = self._deduped(request_id)
                if replayed is not None:
                    return replayed
                record = {"op": "delete", "oid": obj.oid,
                          "x": obj.x, "y": obj.y}
                if request_id is not None:
                    record["req"] = request_id
                # Logged even when it turns out to be a no-op: replay
                # recomputes the same outcome, and the dedupe map must
                # remember *every* acknowledged request id.
                await self._run(self._wal_append, record)
                deleted = await self._run(self._apply_delete, obj)
                changed: list[Subscription] = []
                hints: list[str] = []
                if deleted:
                    self.version += 1
                    self.cache.note_delete(
                        obj.x, obj.y, self.version, self.engine.tree.size
                    )
                    changed, hints = await self._reconcile_subs(
                        "delete", obj.x, obj.y)
                response = {"ok": True, "op": "delete",
                            "version": self.version, "deleted": deleted,
                            "size": self.engine.tree.size}
                if hints:
                    response["subs"] = hints
                self._remember(request_id, response)
                self._note_durable_record()
                self._push_notifications(changed)
            self._g_version.set(self.version)
            self._g_cache_entries.set(len(self.cache))
            self._m_latency[("delete", "engine")].observe(
                time.perf_counter() - start)
            crash_point("before_ack")
            return response

    def _note_durable_record(self) -> None:
        """Count one logged update towards the auto-checkpoint trigger."""
        durable = self.durable
        if durable is None:
            return
        durable.records_since_checkpoint += 1
        if (durable.config.checkpoint_every > 0
                and durable.records_since_checkpoint
                >= durable.config.checkpoint_every
                and self._auto_checkpoint_task is None
                and not self._draining):
            task = asyncio.get_running_loop().create_task(
                self._auto_checkpoint())
            self._auto_checkpoint_task = task

    async def _auto_checkpoint(self) -> None:
        try:
            await self._op_checkpoint({})
        except (DeadlineExceeded, NWCError, StorageError, ValueError,
                OSError):
            # Leave records_since_checkpoint high; the next update
            # re-arms the trigger and retries.
            pass
        finally:
            self._auto_checkpoint_task = None

    def _apply_insert(self, obj) -> None:
        self.engine.insert(obj)
        # Rebuild dirty DEP/IWP structures while we hold the exclusive
        # slot: readers then never trigger (or race on) a lazy rebuild.
        self.engine._refresh_structures()

    def _apply_delete(self, obj) -> bool:
        deleted = self.engine.delete(obj)
        if deleted:
            self.engine._refresh_structures()
        return deleted

    # ------------------------------------------------------------------
    # Subscriptions (standing queries)
    # ------------------------------------------------------------------
    async def _reconcile_subs(self, op: str, x: float,
                              y: float) -> tuple[list[Subscription],
                                                 list[str]]:
        """Re-evaluate affected standing queries; called inside the
        exclusive write slot with the update applied and the version
        bumped, so every changed answer is bit-identical to a fresh
        query at ``self.version``."""
        if not len(self.subs):
            return [], []
        start = time.perf_counter()
        changed, hints, reevals = await self._run(
            reconcile, self.subs, self.engine, op, x, y,
            self.engine.tree.size, self.version)
        if reevals:
            self._m_sub_reevals.inc(reevals)
            self._h_sub_reeval.observe(time.perf_counter() - start)
        if hints:
            self._m_sub_hints.inc(len(hints))
        return changed, hints

    def _register_subscription(self, sub: Subscription) -> None:
        """Index + attach one evaluated subscription (write slot)."""
        self.subs.add(sub)
        self._attach_subscription(sub)
        self._g_sub_active.set(len(self.subs))

    async def _op_subscribe(self, payload: dict[str, Any]) -> dict[str, Any]:
        request_id = protocol.parse_request_id(payload)
        sub_id = protocol.parse_subscription_id(payload)
        kind, spec, query, maintenance = protocol.parse_subscription(payload)
        refused = self._check_admission()
        if refused is not None:
            return refused
        start = time.perf_counter()
        with self._admitted():
            deadline = self._deadline(payload)
            async with self._scheduler.write(deadline):
                self._refresh_pressure_gauges()
                replayed = self._deduped(request_id)
                if replayed is not None:
                    # The retry of an acked subscribe: re-attach the
                    # (new) connection before replaying the ack.
                    existing = self.subs.get(replayed.get("sub"))
                    if existing is not None and not existing.sentinel:
                        self._attach_subscription(existing)
                    return replayed
                existing = self.subs.get(sub_id) if sub_id else None
                if existing is not None and not existing.sentinel:
                    # Resume: same standing query, new connection — the
                    # client reads the current answer and revision and
                    # keeps counting from there (continuity across both
                    # client reconnects and server restarts).
                    self._attach_subscription(existing)
                    return {"ok": True, "op": "subscribe",
                            "sub": existing.sub_id, "kind": existing.kind,
                            "version": self.version,
                            "revision": existing.revision,
                            "result": existing.result, "resumed": True}
                sub = Subscription(
                    sub_id=sub_id or f"sub-{uuid.uuid4().hex[:16]}",
                    kind=kind, spec=spec, query=query,
                    maintenance=maintenance, qx=spec["x"], qy=spec["y"],
                    n=spec["n"])
                record = {"op": "subscribe", "sub": sub.sub_id,
                          "kind": kind, **spec}
                if request_id is not None:
                    record["req"] = request_id
                # Same durability contract as updates: the registration
                # is on disk before the ack leaves, and recovery replays
                # it (re-evaluating at the same point in the record
                # stream, so revisions continue rather than fork).
                await self._run(self._wal_append, record)
                answer, sub.insert_radius, sub.delete_radius = \
                    await self._run(evaluate_subscription, self.engine, sub)
                sub.result = answer
                sub.revision = 1
                sub.version = self.version
                self._register_subscription(sub)
                response = {"ok": True, "op": "subscribe",
                            "sub": sub.sub_id, "kind": kind,
                            "version": self.version, "revision": 1,
                            "result": answer}
                self._remember(request_id, response)
                self._note_durable_record()
            self._m_latency[("subscribe", "engine")].observe(
                time.perf_counter() - start)
            crash_point("before_ack")
            return response

    async def _op_unsubscribe(self, payload: dict[str, Any]) -> dict[str, Any]:
        request_id = protocol.parse_request_id(payload)
        sub_id = protocol.parse_subscription_id(payload, required=True)
        refused = self._check_admission()
        if refused is not None:
            return refused
        start = time.perf_counter()
        with self._admitted():
            deadline = self._deadline(payload)
            async with self._scheduler.write(deadline):
                self._refresh_pressure_gauges()
                replayed = self._deduped(request_id)
                if replayed is not None:
                    return replayed
                record = {"op": "unsubscribe", "sub": sub_id}
                if request_id is not None:
                    record["req"] = request_id
                # Logged even when the id is unknown: like no-op
                # deletes, replay recomputes the same outcome and the
                # dedupe map must remember every acknowledged id.
                await self._run(self._wal_append, record)
                removed = self.subs.remove(sub_id)
                if removed is not None and removed.conn is not None:
                    removed.conn.subs.discard(sub_id)
                    removed.conn = None
                self._g_sub_active.set(len(self.subs))
                response = {"ok": True, "op": "unsubscribe", "sub": sub_id,
                            "removed": removed is not None,
                            "version": self.version}
                self._remember(request_id, response)
                self._note_durable_record()
            self._m_latency[("unsubscribe", "engine")].observe(
                time.perf_counter() - start)
            return response

    def _detach_connection(self, conn: "_Connection") -> None:
        for sub_id in conn.subs:
            sub = self.subs.get(sub_id)
            if sub is not None and sub.conn is conn:
                sub.conn = None
        conn.subs.clear()

    # ------------------------------------------------------------------
    # Maintenance ops
    # ------------------------------------------------------------------
    async def _op_snapshot(self, payload: dict[str, Any]) -> dict[str, Any]:
        path = payload.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError("snapshot needs a 'path' string")
        refused = self._check_admission()
        if refused is not None:
            return refused
        start = time.perf_counter()
        with self._admitted():
            deadline = self._deadline(payload)
            # A snapshot only reads the tree; the crash-safe save
            # (tmp+fsync+rename) runs under a shared slot.
            async with self._scheduler.read(deadline):
                self._refresh_pressure_gauges()
                version = self.version
                await self._run(save_tree, self.engine.tree, path)
            self._m_latency[("snapshot", "engine")].observe(
                time.perf_counter() - start)
            return {"ok": True, "op": "snapshot", "version": version,
                    "path": path}

    async def _op_checkpoint(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Checkpoint-then-compact: tree → ``CURRENT`` → WAL truncation.

        Phase 1 runs under a *read* slot (saving the tree only reads
        it; concurrent queries keep flowing), phase 2 under the
        exclusive write slot (repointing ``CURRENT`` and rewriting the
        WAL must not race an append).  Updates landing between the
        phases are safe: the checkpoint anchors at the sequence number
        captured in phase 1 and compaction keeps every later record.
        """
        if self.durable is None:
            raise ProtocolError(
                "checkpoint requires a durable server (start with a "
                "state directory)")
        refused = self._check_admission()
        if refused is not None:
            return refused
        start = time.perf_counter()
        with self._admitted():
            deadline = self._deadline(payload)
            async with self._checkpoint_lock:
                durable = self.durable
                async with self._scheduler.read(deadline):
                    self._refresh_pressure_gauges()
                    version = self.version
                    seq = durable.wal.last_seq
                    # Captured under the same slot as (seq, version):
                    # replaying records > seq over this state re-runs
                    # exactly the re-evaluations the live server ran,
                    # so revisions stay continuous.
                    subs_state = self.subs.to_state()
                    path = durable.state.checkpoint_path(seq)
                    await self._run(save_tree, self.engine.tree, path)
                crash_point("mid_checkpoint")
                name = os.path.basename(path)
                async with self._scheduler.write(deadline):
                    self._refresh_pressure_gauges()
                    await self._run(durable.state.write_current, name, seq,
                                    version, self._dedupe, subs_state)
                    dropped = await self._run(durable.wal.compact, seq,
                                              version)
                    durable.records_since_checkpoint = \
                        durable.wal.record_count
                pruned = await self._run(durable.state.prune_checkpoints,
                                         name)
            self._m_checkpoints.inc()
            self._m_latency[("checkpoint", "engine")].observe(
                time.perf_counter() - start)
            return {"ok": True, "op": "checkpoint", "version": version,
                    "seq": seq, "checkpoint": name,
                    "wal_records_dropped": dropped,
                    "checkpoints_pruned": pruned}

    async def _op_health(self, payload: dict[str, Any]) -> dict[str, Any]:
        response = {
            "ok": True,
            "op": "health",
            "status": "draining" if self._draining else "serving",
            "version": self.version,
            "size": self.engine.tree.size,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "active": self._active,
            "max_inflight": self.config.max_inflight,
            "max_queue": self.config.max_queue,
            "cache": dataclasses.asdict(self.cache.stats())
                     | {"hit_rate": self.cache.stats().hit_rate},
            "subscriptions": len(self.subs),
        }
        durable = self.durable
        if durable is not None:
            response["durability"] = {
                "fsync": durable.config.fsync,
                "last_seq": durable.wal.last_seq,
                "wal_records": durable.wal.record_count,
                "records_since_checkpoint":
                    durable.records_since_checkpoint,
                "dedupe_entries": len(self._dedupe),
                "recovery": durable.recovery.to_dict(),
            }
        return response

    _HANDLERS: dict[str, Callable[["LineProtocolServer", dict], Awaitable[dict]]] = {
        "nwc": _op_nwc,
        "knwc": _op_knwc,
        "insert": _op_insert,
        "delete": _op_delete,
        "snapshot": _op_snapshot,
        "checkpoint": _op_checkpoint,
        "health": _op_health,
        "metrics": LineProtocolServer._op_metrics,
        "subscribe": _op_subscribe,
        "unsubscribe": _op_unsubscribe,
    }


class ServingThread:
    """Any :class:`LineProtocolServer` on a background thread's loop.

    The in-process harness tests and benchmarks use: ``start()`` returns
    once the socket is bound (exposing ``host``/``port``), ``stop()``
    drains and joins.  Also usable as a context manager.
    """

    def __init__(self, server: LineProtocolServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready: threading.Event | None = None
        self.host = self.server.config.host
        self.port: int | None = None

    def start(self) -> "ServingThread":
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise self._failure
        assert self.port is not None, "server failed to start"
        return self

    def _main(self) -> None:
        async def run():
            try:
                await self.server.start()
                self.port = self.server.port
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:  # surface bind errors to start()
                self._failure = exc
                self._ready.set()
                return
            self._ready.set()
            await self.server.serve_forever(handle_signals=False)

        with contextlib.suppress(asyncio.CancelledError):
            asyncio.run(run())

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self.server.shutdown)
            self._thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> "ServingThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ServerThread(ServingThread):
    """A :class:`QueryServer` on a background thread (see
    :class:`ServingThread`); kept as the convenience constructor the
    tests and benchmarks were written against."""

    def __init__(self, engine: NWCEngine, config: ServeConfig | None = None,
                 metrics: MetricsRegistry | None = None,
                 durable: DurableState | None = None) -> None:
        super().__init__(QueryServer(engine, config=config, metrics=metrics,
                                     durable=durable))
