"""Concurrent query serving: TCP server, result cache, client, loadgen.

The subsystem is dependency-free (stdlib ``asyncio`` + ``socket``) and
wraps one :class:`~repro.core.engine.NWCEngine` behind a single-writer /
many-reader scheduler, an update-aware semantic result cache, and
admission control.  See ``DESIGN.md`` ("Serving architecture") for the
concurrency model and the cache-invalidation correctness argument.
"""

from .cache import CacheStats, ResultCache
from .client import (
    DeadlineError,
    DrainingError,
    OverloadedError,
    RemoteError,
    ServeClient,
    ServeClientError,
    wait_until_healthy,
)
from .loadgen import LoadMix, LoadReport, LoadgenConfig, run_loadgen
from .server import QueryServer, ServeConfig, ServerThread

__all__ = [
    "CacheStats",
    "DeadlineError",
    "DrainingError",
    "LoadMix",
    "LoadReport",
    "LoadgenConfig",
    "OverloadedError",
    "QueryServer",
    "RemoteError",
    "ResultCache",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServerThread",
    "run_loadgen",
    "wait_until_healthy",
]
