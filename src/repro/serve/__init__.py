"""Concurrent query serving: TCP server, result cache, client, loadgen.

The subsystem is dependency-free (stdlib ``asyncio`` + ``socket``) and
wraps one :class:`~repro.core.engine.NWCEngine` behind a single-writer /
many-reader scheduler, an update-aware semantic result cache, and
admission control.  Durability rides on top: a write-ahead log with
checkpoint/compaction (:mod:`repro.serve.durability` over
:mod:`repro.storage.wal`), boot-time recovery, a crash-restarting
process supervisor (:mod:`repro.serve.supervisor`) and idempotent
client retries.  See ``DESIGN.md`` ("Serving architecture" and
"Durability & recovery") for the concurrency model, the
cache-invalidation correctness argument and the crash-window analysis.
"""

from .backoff import BackoffPolicy
from .cache import CacheStats, ResultCache
from .client import (
    ConnectionLostError,
    DeadlineError,
    DrainingError,
    OverloadedError,
    RemoteError,
    RetryPolicy,
    ServeClient,
    ServeClientError,
    ShardUnavailableError,
    SubscriptionStream,
    wait_until_healthy,
)
from .durability import (
    DurabilityConfig,
    DurableState,
    RecoveryReport,
    ServerState,
    recover,
)
from .loadgen import (LoadMix, LoadReport, LoadgenConfig,
                      ShardedVerifyTwin, run_loadgen)
from .server import (LineProtocolServer, QueryServer, ServeConfig,
                     ServerThread, ServingThread)
from .supervisor import Supervisor, SupervisorConfig

__all__ = [
    "BackoffPolicy",
    "CacheStats",
    "ConnectionLostError",
    "DeadlineError",
    "DrainingError",
    "DurabilityConfig",
    "DurableState",
    "LineProtocolServer",
    "LoadMix",
    "LoadReport",
    "LoadgenConfig",
    "OverloadedError",
    "QueryServer",
    "RecoveryReport",
    "RemoteError",
    "ResultCache",
    "RetryPolicy",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServingThread",
    "ShardUnavailableError",
    "ShardedVerifyTwin",
    "SubscriptionStream",
    "ServerState",
    "ServerThread",
    "Supervisor",
    "SupervisorConfig",
    "recover",
    "run_loadgen",
    "wait_until_healthy",
]
