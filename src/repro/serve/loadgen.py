"""Closed-loop multi-worker load generator for the query server.

Each worker owns one connection and one RNG and loops: draw an
operation from the configured mix, send it, wait for the answer, record
the latency.  Query locations come from the same distributions the
experiment harness uses (:mod:`repro.workloads`), drawn from a finite
per-worker pool so repeated queries exercise the server's result cache.

**Verification** (``verify_engine``): worker 0 keeps a *twin* engine —
built exactly like the server's — and is the only worker that issues
updates.  Because the client is closed-loop, worker 0's view of the
dataset is sequentially consistent with the server's: it applies every
update to the twin the moment the server acknowledges it, recomputes
every one of its queries locally, and compares the serialized answers
byte for byte.  Any divergence (including on cache hits, which is where
an unsound invalidation rule would show) is counted as a mismatch.
Other workers stay read-only in this mode so the twin never drifts.

**Subscriptions** (``subscriptions`` > 0): worker 0 registers that many
standing queries over a dedicated streaming connection before driving
load, and drains the server's pushed ``notify`` frames between its
closed-loop requests.  With ``verify_subs`` (requires the twin), every
acknowledged update re-derives each subscription's expected answer on
the twin; an answer that changed *must* arrive as a notification
carrying exactly that result at exactly the next revision — anything
late is ``sub_missed``, anything unexpected (or with the wrong payload)
is ``sub_spurious``, and both count as mismatches.

The report carries client-side throughput and latency percentiles
(exact, from the raw samples) split by cache hit/miss, and optionally
feeds a :class:`~repro.obs.metrics.MetricsRegistry` for uniform export
alongside the server's own metrics.
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..core import KNWCQuery, NWCEngine, NWCQuery
from ..datasets import Dataset
from ..geometry import PointObject
from ..obs.metrics import MetricsRegistry
from ..workloads import data_biased_query_points
from . import protocol
from .client import (
    RetryPolicy,
    ServeClient,
    ServeClientError,
    wait_until_healthy,
)

__all__ = ["LoadMix", "LoadgenConfig", "LoadReport", "ShardedVerifyTwin",
           "run_loadgen"]

#: Object ids the load generator inserts start here, far above any
#: dataset oid, so generated updates never collide with seed objects.
LOADGEN_OID_BASE = 10_000_000


@dataclass(frozen=True, slots=True)
class LoadMix:
    """Relative operation weights (normalized internally)."""

    nwc: float = 0.70
    knwc: float = 0.15
    insert: float = 0.10
    delete: float = 0.05

    def __post_init__(self) -> None:
        if min(self.nwc, self.knwc, self.insert, self.delete) < 0:
            raise ValueError("mix weights must be non-negative")
        if self.nwc + self.knwc + self.insert + self.delete <= 0:
            raise ValueError("mix weights must not all be zero")

    @property
    def update_fraction(self) -> float:
        total = self.nwc + self.knwc + self.insert + self.delete
        return (self.insert + self.delete) / total


@dataclass(frozen=True, slots=True)
class LoadgenConfig:
    """One load-generator run.

    Attributes:
        host, port: Server address.
        workers: Concurrent closed-loop clients.
        duration_s: Run length; ignored when ``requests_per_worker``
            is set.
        requests_per_worker: Fixed request count per worker (exact,
            deterministic runs for tests/CI).
        mix: Operation mix.  Updates are always issued by worker 0
            only, so a verification twin can replay them.
        query_pool: Distinct query locations per worker; smaller pools
            repeat more and hit the cache more.
        length, width, n, k, m: Query parameters.
        seed: Base RNG seed (worker ``i`` uses ``seed + i``).
        deadline_ms: Optional per-request deadline passed to the server.
        connect_timeout_s: How long to wait for the server to answer
            ``health`` before starting.
        retry: Client retry policy; with one attached, workers ride out
            server crashes/restarts (reconnect + idempotent resend) and
            the report counts ``retries``/``reconnects`` instead of
            ``connection_lost`` errors.
    """

    host: str = "127.0.0.1"
    port: int = 7654
    workers: int = 4
    duration_s: float = 2.0
    requests_per_worker: int | None = None
    mix: LoadMix = field(default_factory=LoadMix)
    query_pool: int = 32
    length: float = 100.0
    width: float = 100.0
    n: int = 8
    k: int = 4
    m: int = 1
    seed: int = 0
    deadline_ms: float | None = None
    connect_timeout_s: float = 15.0
    retry: RetryPolicy | None = None
    subscriptions: int = 0
    verify_subs: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.subscriptions < 0:
            raise ValueError("subscriptions must be non-negative")
        if self.requests_per_worker is None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.query_pool < 1:
            raise ValueError("query_pool must be at least 1")


def _percentiles(samples: list[float]) -> dict[str, float]:
    """Exact p50/p95/p99 (nearest-rank) of raw latency samples, in ms."""
    if not samples:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
    ordered = sorted(samples)
    def rank(q: float) -> float:
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index] * 1000.0
    return {
        "p50_ms": round(rank(0.50), 4),
        "p95_ms": round(rank(0.95), 4),
        "p99_ms": round(rank(0.99), 4),
        "mean_ms": round(sum(ordered) / len(ordered) * 1000.0, 4),
    }


@dataclass(slots=True)
class LoadReport:
    """Outcome of one load-generator run."""

    workers: int
    wall_s: float
    requests: int
    qps: float
    by_op: dict[str, int]
    errors: int
    error_codes: dict[str, int]
    retries: int
    reconnects: int
    latency: dict[str, float]
    latency_cache_hit: dict[str, float]
    latency_cache_miss: dict[str, float]
    cache_hits: int
    cache_misses: int
    updates_applied: int
    verified: int
    mismatches: int
    mismatch_examples: list[dict[str, Any]]
    #: Server-side ``shard_*`` metric families (scatter fan-out, prune
    #: skips, refetches), scraped after the run when the target is a
    #: shard coordinator; empty against a single-engine server.
    shard_metrics: dict[str, Any] = field(default_factory=dict)
    #: Fleet-scope scrape summary (coordinator targets only): shard
    #: count scraped, unreachable shards, and the label-dropped rollup
    #: of merged families — so cross-process counters like
    #: ``shard_prune_skips_total`` are reported once, coherently,
    #: instead of per-process fragments.
    fleet: dict[str, Any] = field(default_factory=dict)
    #: Standing queries registered by worker 0 (``config.subscriptions``).
    subscriptions: int = 0
    #: ``notify`` frames received over the streaming connection.
    notifications: int = 0
    #: Expected notifications (twin said the answer changed) that never
    #: arrived; counted into ``mismatches`` too.
    sub_missed: int = 0
    #: Frames with no matching expectation, or the wrong result or
    #: revision; counted into ``mismatches`` too.
    sub_spurious: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        out["cache_hit_rate"] = round(self.cache_hit_rate, 4)
        return out

    def format(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"workers: {self.workers}   wall: {self.wall_s:.2f}s   "
            f"requests: {self.requests}   throughput: {self.qps:.1f} req/s",
            f"ops: {self.by_op}   errors: {self.errors} {self.error_codes}",
            f"retries: {self.retries}   reconnects: {self.reconnects}",
            f"latency (all): {self.latency}",
            f"latency (cache hit):  {self.latency_cache_hit}",
            f"latency (cache miss): {self.latency_cache_miss}",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"(hit rate {self.cache_hit_rate:.2%})",
            f"updates applied: {self.updates_applied}",
        ]
        if self.verified or self.mismatches:
            lines.append(
                f"verified: {self.verified} responses, "
                f"{self.mismatches} mismatches"
            )
        if self.shard_metrics:
            parts = []
            for name, family in sorted(self.shard_metrics.items()):
                for labels, value in family.get("values", {}).items():
                    if isinstance(value, dict):  # histogram summary
                        value = (f"n={value.get('count', 0)} "
                                 f"mean={value.get('mean', 0.0):.2f}")
                    tag = f"{name}{{{labels}}}" if labels else name
                    parts.append(f"{tag}={value}")
            lines.append("shards: " + "  ".join(parts))
        if self.fleet:
            lines.append(
                f"fleet: {self.fleet.get('shards_scraped', 0)} shards "
                f"scraped, unreachable: {self.fleet.get('unreachable', [])}")
        if self.subscriptions:
            lines.append(
                f"subscriptions: {self.subscriptions} registered, "
                f"{self.notifications} notifications, "
                f"{self.sub_missed} missed, {self.sub_spurious} spurious")
        return "\n".join(lines)


class ShardedVerifyTwin:
    """Verification twin matching the shard coordinator's canon.

    A coordinator answers NWC bit-identically to the pruned columnar
    single engine, but kNWC bit-identically to the *unpruned baseline*
    (the repo's exact-kNWC reference; pruned engines only agree on
    distances, not on tie picks).  This twin delegates each op to the
    engine the coordinator is exact against, and mirrors updates into
    both.
    """

    def __init__(self, nwc_engine: NWCEngine, knwc_engine: NWCEngine) -> None:
        self.nwc_engine = nwc_engine
        self.knwc_engine = knwc_engine

    def nwc(self, query):
        return self.nwc_engine.nwc(query)

    def knwc(self, query):
        return self.knwc_engine.knwc(query)

    def insert(self, obj) -> None:
        self.nwc_engine.insert(obj)
        self.knwc_engine.insert(obj)

    def delete(self, obj) -> bool:
        deleted = self.nwc_engine.delete(obj)
        self.knwc_engine.delete(obj)
        return deleted


class _Worker:
    """One closed-loop client; worker 0 optionally verifies."""

    def __init__(self, index: int, config: LoadgenConfig, dataset: Dataset,
                 twin: NWCEngine | None, stop_at: float | None) -> None:
        self.index = index
        self.config = config
        self.rng = random.Random(config.seed * 7919 + index)
        # Jitter scaled to the query window so locations stay in-extent
        # for any dataset size (the helper's default is tuned to the
        # paper's 10,000-unit space).
        self._jitter = max(config.length, config.width)
        points = data_biased_query_points(
            dataset, config.query_pool, seed=config.seed + index,
            jitter=self._jitter,
        )
        self.query_points = points
        self.twin = twin
        self.stop_at = stop_at
        self.samples: list[tuple[str, bool, float]] = []  # (op, cached, s)
        self.by_op: dict[str, int] = {}
        self.errors: dict[str, int] = {}
        self.updates = 0
        self.verified = 0
        self.mismatches: list[dict[str, Any]] = []
        self.inserted: list[PointObject] = []
        self._next_oid = LOADGEN_OID_BASE + index * 1_000_000
        self.failure: Exception | None = None
        self.retries = 0
        self.reconnects = 0
        # Standing-query state (worker 0 only, see _setup_subscriptions)
        self.subs_registered = 0
        self.notifications = 0
        self.sub_missed = 0
        self.sub_spurious = 0
        self._sub_client: ServeClient | None = None
        self._sub_stream = None
        self._sub_states: list[dict[str, Any]] = []
        # sub id -> FIFO of (expected revision, expected result)
        self._sub_pending: dict[str, list[tuple[int, dict[str, Any]]]] = {}

    # Only worker 0 may update, so a single verification twin can
    # replay the sequence of acknowledged updates deterministically.
    @property
    def may_update(self) -> bool:
        return self.index == 0

    def _pick_op(self) -> str:
        mix = self.config.mix
        weights = [mix.nwc, mix.knwc]
        ops = ["nwc", "knwc"]
        if self.may_update:
            ops += ["insert", "delete"]
            weights += [mix.insert, mix.delete]
        return self.rng.choices(ops, weights=weights)[0]

    def run(self) -> None:
        try:
            with ServeClient(self.config.host, self.config.port,
                             retry=self.config.retry,
                             seed=self.config.seed * 104729 + self.index,
                             ) as client:
                try:
                    if self.may_update and self.config.subscriptions:
                        self._setup_subscriptions()
                    count = 0
                    while True:
                        if self.config.requests_per_worker is not None:
                            if count >= self.config.requests_per_worker:
                                break
                        elif time.monotonic() >= self.stop_at:
                            break
                        self._one_request(client)
                        count += 1
                    self._teardown_subscriptions(client)
                finally:
                    self.retries = client.retries
                    self.reconnects = client.reconnects
                    if self._sub_client is not None:
                        self._sub_client.close()
        except Exception as exc:  # surfaced by run_loadgen
            self.failure = exc

    def _one_request(self, client: ServeClient) -> None:
        op = self._pick_op()
        if op == "delete" and not self.inserted:
            op = "insert"  # nothing of ours to delete yet
        self.by_op[op] = self.by_op.get(op, 0) + 1
        start = time.perf_counter()
        try:
            response = getattr(self, "_op_" + op)(client)
        except ServeClientError as exc:
            self.errors[exc.code] = self.errors.get(exc.code, 0) + 1
            return
        elapsed = time.perf_counter() - start
        cached = bool(response.get("cached")) if op in ("nwc", "knwc") else False
        self.samples.append((op, cached, elapsed))

    # -- operations ----------------------------------------------------
    def _op_nwc(self, client: ServeClient) -> dict[str, Any]:
        x, y = self.rng.choice(self.query_points)
        c = self.config
        response = client.nwc(x, y, c.length, c.width, c.n,
                              deadline_ms=c.deadline_ms)
        if self.twin is not None:
            query = NWCQuery(x, y, c.length, c.width, c.n)
            self._verify(response, protocol.serialize_nwc(self.twin.nwc(query)),
                         {"op": "nwc", "x": x, "y": y})
        return response

    def _op_knwc(self, client: ServeClient) -> dict[str, Any]:
        x, y = self.rng.choice(self.query_points)
        c = self.config
        response = client.knwc(x, y, c.length, c.width, c.n, c.k, c.m,
                               deadline_ms=c.deadline_ms)
        if self.twin is not None:
            query = KNWCQuery.make(x, y, c.length, c.width, c.n, c.k, c.m)
            self._verify(response,
                         protocol.serialize_knwc(self.twin.knwc(query)),
                         {"op": "knwc", "x": x, "y": y})
        return response

    def _op_insert(self, client: ServeClient) -> dict[str, Any]:
        x, y = self.rng.choice(self.query_points)
        # Jitter off the query pool so inserts land near (but not on)
        # hot regions — the interesting case for cache invalidation.
        obj = PointObject(self._next_oid,
                          x + self.rng.uniform(-self._jitter, self._jitter),
                          y + self.rng.uniform(-self._jitter, self._jitter))
        self._next_oid += 1
        response = client.insert(obj.oid, obj.x, obj.y,
                                 deadline_ms=self.config.deadline_ms)
        self.inserted.append(obj)
        self.updates += 1
        if self.twin is not None:
            self.twin.insert(obj)
        self._after_update_subs()
        return response

    def _op_delete(self, client: ServeClient) -> dict[str, Any]:
        obj = self.inserted.pop(self.rng.randrange(len(self.inserted)))
        response = client.delete(obj.oid, obj.x, obj.y,
                                 deadline_ms=self.config.deadline_ms)
        self.updates += 1
        if self.twin is not None:
            self.twin.delete(obj)
            if not response.get("deleted"):
                self.mismatches.append(
                    {"op": "delete", "oid": obj.oid,
                     "detail": "server did not find an object the twin holds"}
                )
        self._after_update_subs()
        return response

    def _verify(self, response: dict[str, Any], expected: dict[str, Any],
                context: dict[str, Any]) -> None:
        self.verified += 1
        if response.get("result") != expected and len(self.mismatches) < 10:
            self.mismatches.append(
                context | {
                    "cached": response.get("cached"),
                    "version": response.get("version"),
                    "served": response.get("result"),
                    "expected": expected,
                }
            )

    # -- standing queries ----------------------------------------------
    def _setup_subscriptions(self) -> None:
        """Register the standing queries on a dedicated streaming
        connection.  Runs before the first update (worker 0 is the only
        updater and is registering, other workers are read-only), so no
        notify frame can interleave with the subscribe acks."""
        c = self.config
        self._sub_client = ServeClient(c.host, c.port,
                                       timeout_s=c.connect_timeout_s)
        for i in range(c.subscriptions):
            x, y = self.query_points[i % len(self.query_points)]
            if i % 4 == 3:  # every fourth standing query is a kNWC
                stream = self._sub_client.subscribe(
                    x, y, c.length, c.width, c.n, k=c.k, m=c.m)
                query: Any = KNWCQuery.make(x, y, c.length, c.width,
                                            c.n, c.k, c.m)
            else:
                stream = self._sub_client.subscribe(
                    x, y, c.length, c.width, c.n)
                query = NWCQuery(x, y, c.length, c.width, c.n)
            state = {"id": stream.sub_id, "kind": stream.kind,
                     "query": query, "result": stream.result,
                     "revision": stream.revision}
            if c.verify_subs and self.twin is not None:
                expected = self._expected_sub_answer(state)
                if expected != stream.result and len(self.mismatches) < 10:
                    self.mismatches.append(
                        {"op": "subscribe", "sub": stream.sub_id,
                         "served": stream.result, "expected": expected})
                state["result"] = expected
            if self._sub_stream is None:
                self._sub_stream = stream
            self._sub_states.append(state)
        self.subs_registered = len(self._sub_states)

    def _expected_sub_answer(self, state: dict[str, Any]) -> dict[str, Any]:
        if state["kind"] == "nwc":
            return protocol.serialize_nwc(self.twin.nwc(state["query"]))
        return protocol.serialize_knwc(self.twin.knwc(state["query"]))

    def _after_update_subs(self) -> None:
        """Derive which standing queries this acknowledged update must
        have changed (twin recomputation), then drain the stream until
        every expected notification arrived."""
        if self._sub_stream is None:
            return
        if self.config.verify_subs and self.twin is not None:
            for state in self._sub_states:
                expected = self._expected_sub_answer(state)
                if expected != state["result"]:
                    state["result"] = expected
                    state["revision"] += 1
                    self._sub_pending.setdefault(state["id"], []).append(
                        (state["revision"], expected))
        self._drain_notifications(grace_s=5.0)

    def _pending_count(self) -> int:
        return sum(len(queue) for queue in self._sub_pending.values())

    def _drain_notifications(self, grace_s: float) -> None:
        """Consume pushed frames; block up to ``grace_s`` only while
        expectations are outstanding.  Expectations still unmet after
        the grace window are recorded as missed immediately (rather
        than re-stalling every subsequent update on them)."""
        deadline = time.monotonic() + grace_s
        while True:
            pending = self._pending_count()
            timeout = 0.01 if not pending else min(
                0.25, max(0.01, deadline - time.monotonic()))
            try:
                frame = self._sub_stream.poll(timeout_s=timeout)
            except ServeClientError:
                return  # stream gone; teardown accounts for leftovers
            if frame is None:
                if not pending:
                    return
                if time.monotonic() >= deadline:
                    self._record_missed()
                    return
                continue
            self.notifications += 1
            self._match_notification(frame)

    def _match_notification(self, frame: dict[str, Any]) -> None:
        if not self.config.verify_subs or self.twin is None:
            return
        queue = self._sub_pending.get(frame.get("sub"))
        if not queue:
            self.sub_spurious += 1
            if len(self.mismatches) < 10:
                self.mismatches.append(
                    {"op": "notify", "sub": frame.get("sub"),
                     "detail": "unexpected notification", "frame": frame})
            return
        revision, expected = queue.pop(0)
        if frame.get("revision") != revision or frame.get("result") != expected:
            self.sub_spurious += 1
            if len(self.mismatches) < 10:
                self.mismatches.append(
                    {"op": "notify", "sub": frame.get("sub"),
                     "served": frame.get("result"), "expected": expected,
                     "revision": frame.get("revision"),
                     "expected_revision": revision})

    def _record_missed(self) -> None:
        for sub_id, queue in self._sub_pending.items():
            for revision, _expected in queue:
                self.sub_missed += 1
                if len(self.mismatches) < 10:
                    self.mismatches.append(
                        {"op": "notify", "sub": sub_id,
                         "detail": f"missed notification rev {revision}"})
            queue.clear()

    def _teardown_subscriptions(self, client: ServeClient) -> None:
        if self._sub_client is None:
            return
        self._drain_notifications(grace_s=5.0)
        self._record_missed()
        for state in self._sub_states:
            try:
                client.unsubscribe(state["id"])
            except ServeClientError:
                break  # server gone; nothing left to clean up


def run_loadgen(
    config: LoadgenConfig,
    dataset: Dataset,
    verify_engine: NWCEngine | ShardedVerifyTwin | None = None,
    metrics: MetricsRegistry | None = None,
) -> LoadReport:
    """Drive the server with ``config.workers`` closed-loop clients.

    Args:
        config: Run shape; see :class:`LoadgenConfig`.
        dataset: Source of query locations (must match the dataset the
            server was started with for meaningful results).
        verify_engine: Twin engine for worker-0 verification; must be
            built identically to the server's engine (same points,
            scheme, execution mode).  ``None`` disables verification
            and keeps every worker read-write-mixed per the mix.
        metrics: Optional registry to fold client-side latencies into
            (``loadgen_request_seconds{op, source}``).

    Returns:
        The aggregated :class:`LoadReport`.
    """
    if config.verify_subs and verify_engine is None:
        raise ValueError("verify_subs requires a verify_engine twin")
    wait_until_healthy(config.host, config.port,
                       timeout_s=config.connect_timeout_s)
    stop_at = None
    if config.requests_per_worker is None:
        stop_at = time.monotonic() + config.duration_s
    workers = [
        _Worker(i, config, dataset,
                twin=verify_engine if i == 0 else None, stop_at=stop_at)
        for i in range(config.workers)
    ]
    threads = [
        threading.Thread(target=w.run, name=f"loadgen-{w.index}", daemon=True)
        for w in workers
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    for worker in workers:
        if worker.failure is not None:
            raise worker.failure

    samples = [s for w in workers for s in w.samples]
    if metrics is not None:
        hists: dict[tuple[str, str], Any] = {}
        for op, cached, elapsed in samples:
            source = "cache" if cached else "engine"
            hist = hists.get((op, source))
            if hist is None:
                hist = metrics.histogram(
                    "loadgen_request_seconds",
                    "Client-observed request latency",
                    labels={"op": op, "source": source},
                )
                hists[(op, source)] = hist
            hist.observe(elapsed)

    by_op: dict[str, int] = {}
    errors: dict[str, int] = {}
    for worker in workers:
        for op, count in worker.by_op.items():
            by_op[op] = by_op.get(op, 0) + count
        for code, count in worker.errors.items():
            errors[code] = errors.get(code, 0) + count
    query_samples = [s for s in samples if s[0] in ("nwc", "knwc")]
    hit = [s[2] for s in query_samples if s[1]]
    miss = [s[2] for s in query_samples if not s[1]]
    mismatches = [m for w in workers for m in w.mismatches]
    shard_metrics: dict[str, Any] = {}
    fleet: dict[str, Any] = {}
    try:
        with ServeClient(config.host, config.port) as probe:
            families = probe.metrics().get("metrics", {})
            shard_metrics = {name: family
                             for name, family in families.items()
                             if name.startswith("shard_")}
            if shard_metrics:
                # Coordinator target: also take the merged fleet view so
                # cross-process counters appear once, not per-fragment.
                merged = probe.metrics(scope="fleet")
                fleet = {
                    "shards_scraped": merged.get("shards_scraped", 0),
                    "unreachable": merged.get("unreachable", []),
                    "rollup": merged.get("rollup", {}),
                }
    except (ServeClientError, OSError):
        pass  # server already gone; the report stands without the scrape
    return LoadReport(
        workers=config.workers,
        wall_s=round(wall, 4),
        requests=len(samples),
        qps=round(len(samples) / wall, 2) if wall > 0 else 0.0,
        by_op=by_op,
        errors=sum(errors.values()),
        error_codes=errors,
        retries=sum(w.retries for w in workers),
        reconnects=sum(w.reconnects for w in workers),
        latency=_percentiles([s[2] for s in samples]),
        latency_cache_hit=_percentiles(hit),
        latency_cache_miss=_percentiles(miss),
        cache_hits=len(hit),
        cache_misses=len(miss),
        updates_applied=sum(w.updates for w in workers),
        verified=sum(w.verified for w in workers),
        mismatches=len(mismatches),
        mismatch_examples=mismatches[:10],
        shard_metrics=shard_metrics,
        fleet=fleet,
        subscriptions=sum(w.subs_registered for w in workers),
        notifications=sum(w.notifications for w in workers),
        sub_missed=sum(w.sub_missed for w in workers),
        sub_spurious=sum(w.sub_spurious for w in workers),
    )
