"""Jittered exponential backoff, shared by every retry loop.

Three call sites retry against the same failure mode (a server that is
briefly gone — overload spike, restart after a crash, supervisor
backoff) and they must not retry in lockstep:
:func:`~repro.serve.client.wait_until_healthy` polling for boot,
:class:`~repro.serve.client.ServeClient`'s reconnect-and-resend path,
and the :mod:`~repro.serve.supervisor` restart loop.  One policy object
serves all three so their timing behaviour is tested once.

The delay for attempt ``i`` (0-based) is
``min(max_s, initial_s * factor**i)`` scaled by a uniform jitter factor
in ``[1 - jitter, 1]`` — full delays are the ceiling, jitter only
shortens, so "bounded" stays literally true.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["BackoffPolicy", "retry_deadline"]


@dataclass(frozen=True, slots=True)
class BackoffPolicy:
    """Shape of one jittered exponential backoff sequence.

    Attributes:
        initial_s: First delay.
        max_s: Per-delay ceiling.
        factor: Exponential growth factor.
        jitter: Fraction of each delay randomly shaved off (0 = none,
            0.5 = delays land uniformly in [half, full]).
    """

    initial_s: float = 0.05
    max_s: float = 2.0
    factor: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.initial_s <= 0 or self.max_s < self.initial_s:
            raise ValueError("need 0 < initial_s <= max_s")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The jittered delay before retry number ``attempt`` (0-based)."""
        base = min(self.max_s, self.initial_s * self.factor ** attempt)
        return base * (1.0 - rng.random() * self.jitter)

    def delays(self, rng: random.Random) -> Iterator[float]:
        """Infinite stream of jittered delays."""
        attempt = 0
        while True:
            yield self.delay(attempt, rng)
            attempt += 1


def retry_deadline(
    policy: BackoffPolicy,
    deadline: float,
    rng: random.Random,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[int]:
    """Yield attempt numbers until ``deadline`` (monotonic seconds).

    The first attempt is immediate; each subsequent one follows a
    jittered backoff delay, clipped so the loop never sleeps past the
    deadline.  The iterator simply stops when time is up — the caller
    raises its own timeout error with its own context.
    """
    attempt = 0
    while True:
        yield attempt
        now = time.monotonic()
        if now >= deadline:
            return
        sleep(min(policy.delay(attempt, rng), deadline - now))
        attempt += 1
