"""Blocking client for the query server.

One :class:`ServeClient` wraps one TCP connection and issues one
request at a time (the closed-loop shape the load generator and the
tests want).  Server-side typed errors are raised as exceptions:
``overloaded`` → :class:`OverloadedError`, ``deadline_exceeded`` →
:class:`DeadlineError`, ``draining`` → :class:`DrainingError`,
``bad_request``/``internal`` → :class:`RemoteError`.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from . import protocol

__all__ = [
    "DeadlineError",
    "DrainingError",
    "OverloadedError",
    "RemoteError",
    "ServeClient",
    "ServeClientError",
    "wait_until_healthy",
]


class ServeClientError(Exception):
    """Base class of client-side failures; carries the error ``code``."""

    code = "client"

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code


class OverloadedError(ServeClientError):
    """The server's admission control refused the request."""

    code = "overloaded"


class DeadlineError(ServeClientError):
    """The request's deadline passed before the engine ran it."""

    code = "deadline_exceeded"


class DrainingError(ServeClientError):
    """The server is shutting down gracefully."""

    code = "draining"


class RemoteError(ServeClientError):
    """Any other server-reported failure (bad request, internal)."""


_ERROR_TYPES = {
    "overloaded": OverloadedError,
    "deadline_exceeded": DeadlineError,
    "draining": DrainingError,
}


class ServeClient:
    """A blocking NDJSON client; usable as a context manager."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7654,
                 timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def call(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request and return the (``ok: true``) response.

        Raises the typed exception matching the server's error code on
        ``ok: false``, and :class:`ServeClientError` when the
        connection drops mid-request.
        """
        self._file.write(protocol.encode_line(payload))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeClientError("connection closed by server")
        response = protocol.decode_line(line)
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        code = error.get("code", "internal")
        message = error.get("message", "unknown server error")
        raise _ERROR_TYPES.get(code, RemoteError)(message, code)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def nwc(self, x: float, y: float, length: float, width: float, n: int,
            measure: str | None = None,
            deadline_ms: float | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": "nwc", "x": x, "y": y,
                                   "length": length, "width": width, "n": n}
        if measure is not None:
            payload["measure"] = measure
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.call(payload)

    def knwc(self, x: float, y: float, length: float, width: float, n: int,
             k: int, m: int = 0, maintenance: str = "exact",
             measure: str | None = None,
             deadline_ms: float | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": "knwc", "x": x, "y": y,
                                   "length": length, "width": width,
                                   "n": n, "k": k, "m": m,
                                   "maintenance": maintenance}
        if measure is not None:
            payload["measure"] = measure
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.call(payload)

    def insert(self, oid: int, x: float, y: float,
               deadline_ms: float | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": "insert", "oid": oid, "x": x, "y": y}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.call(payload)

    def delete(self, oid: int, x: float, y: float,
               deadline_ms: float | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": "delete", "oid": oid, "x": x, "y": y}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.call(payload)

    def snapshot(self, path: str) -> dict[str, Any]:
        return self.call({"op": "snapshot", "path": path})

    def health(self) -> dict[str, Any]:
        return self.call({"op": "health"})

    def metrics(self, fmt: str = "json") -> dict[str, Any]:
        return self.call({"op": "metrics", "format": fmt})


def wait_until_healthy(host: str, port: int, timeout_s: float = 15.0,
                       interval_s: float = 0.1) -> dict[str, Any]:
    """Poll ``health`` until the server answers (or raise ``TimeoutError``).

    Used by the load generator and CI to sequence "boot server, then
    drive it" without sleeping a fixed amount.
    """
    give_up = time.monotonic() + timeout_s
    last_error: Exception | None = None
    while time.monotonic() < give_up:
        try:
            with ServeClient(host, port, timeout_s=interval_s + 2.0) as client:
                return client.health()
        except (OSError, ServeClientError) as exc:
            last_error = exc
            time.sleep(interval_s)
    raise TimeoutError(
        f"server at {host}:{port} not healthy after {timeout_s}s: {last_error}"
    )
