"""Blocking client for the query server.

One :class:`ServeClient` wraps one TCP connection and issues one
request at a time (the closed-loop shape the load generator and the
tests want).  Server-side typed errors are raised as exceptions:
``overloaded`` → :class:`OverloadedError`, ``deadline_exceeded`` →
:class:`DeadlineError`, ``draining`` → :class:`DrainingError`,
``bad_request``/``internal`` → :class:`RemoteError`.

**Idempotent retries** (:class:`RetryPolicy`): with a policy attached,
a dropped connection is not an error the caller sees — the client
reconnects with jittered exponential backoff and resends.  Queries are
pure, so resending is always safe; updates are made safe by a client-
generated request id (``req``) attached to every ``insert``/``delete``:
the server logs the id in its write-ahead log and answers a replayed id
from its dedupe map instead of applying the update twice.  A ``kill
-9`` of the server mid-burst is therefore invisible to callers — the
supervisor restarts it, the client reconnects, and every in-flight
update lands exactly once.
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from dataclasses import dataclass, field
from typing import Any

from . import protocol
from .backoff import BackoffPolicy, retry_deadline

__all__ = [
    "ConnectionLostError",
    "DeadlineError",
    "DrainingError",
    "OverloadedError",
    "RemoteError",
    "RetryPolicy",
    "ServeClient",
    "ServeClientError",
    "ShardUnavailableError",
    "SubscriptionStream",
    "wait_until_healthy",
]


class ServeClientError(Exception):
    """Base class of client-side failures; carries the error ``code``."""

    code = "client"

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code


class OverloadedError(ServeClientError):
    """The server's admission control refused the request."""

    code = "overloaded"


class DeadlineError(ServeClientError):
    """The request's deadline passed before the engine ran it."""

    code = "deadline_exceeded"


class DrainingError(ServeClientError):
    """The server is shutting down gracefully."""

    code = "draining"


class ConnectionLostError(ServeClientError):
    """The connection dropped (and retries, if any, were exhausted)."""

    code = "connection_lost"


class ShardUnavailableError(ServeClientError):
    """A sharded coordinator could not reach a required shard worker."""

    code = "shard_unavailable"


class RemoteError(ServeClientError):
    """Any other server-reported failure (bad request, internal)."""


_ERROR_TYPES = {
    "overloaded": OverloadedError,
    "deadline_exceeded": DeadlineError,
    "draining": DrainingError,
    "shard_unavailable": ShardUnavailableError,
}


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Reconnect-and-resend behaviour of one client.

    Attributes:
        max_attempts: Total tries per request (1 = no retry).
        backoff: Jittered delay schedule between tries.
        retry_draining: Also retry requests a *draining* server refused
            — right when a supervisor will boot a replacement, wrong
            when the shutdown is final.
    """

    max_attempts: int = 6
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    retry_draining: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")


class ServeClient:
    """A blocking NDJSON client; usable as a context manager."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7654,
                 timeout_s: float = 30.0,
                 retry: RetryPolicy | None = None,
                 seed: int | None = None) -> None:
        """Connect to a server.

        Args:
            host, port: Server address.
            timeout_s: Socket timeout for connect and each request.
            retry: Reconnect-and-resend policy; ``None`` (default) fails
                fast on the first connection error, preserving strict
                one-shot semantics.
            seed: Seeds backoff jitter and request-id generation — for
                deterministic tests only.
        """
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry
        self.retries = 0      # resends after a connection failure
        self.reconnects = 0   # successful re-establishments
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None
        self._file = None
        self._rbuf = bytearray()
        self._connect()

    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout_s)
        try:
            self._file = sock.makefile("rwb")
        except BaseException:
            # Nothing else owns the socket yet: close it here or leak it.
            sock.close()
            raise
        self._sock = sock
        self._rbuf = bytearray()

    def _disconnect(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._rbuf = bytearray()

    def _request_id(self) -> str:
        # Drawn from the client's own rng so seeded tests get a
        # deterministic id stream; unseeded clients get uuid4-quality ids.
        return uuid.UUID(int=self._rng.getrandbits(128), version=4).hex

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def call(self, payload: dict[str, Any],
             idempotent: bool = True) -> dict[str, Any]:
        """Send one request and return the (``ok: true``) response.

        Raises the typed exception matching the server's error code on
        ``ok: false``.  Connection failures raise
        :class:`ConnectionLostError` — unless a :class:`RetryPolicy` is
        attached and ``idempotent`` is true, in which case the client
        reconnects with jittered backoff and resends, surfacing the
        error only once every attempt is spent.  Pass
        ``idempotent=False`` for requests that must not be resent
        (updates without a ``req`` id).
        """
        attempts = (self.retry.max_attempts
                    if self.retry is not None and idempotent else 1)
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                self.retries += 1
                time.sleep(self.retry.backoff.delay(attempt - 1, self._rng))
            try:
                if self._sock is None:
                    self._connect()
                    self.reconnects += 1
                return self._call_once(payload)
            except (ConnectionLostError, OSError) as exc:
                self._disconnect()
                last_error = exc
            except DrainingError as exc:
                if self.retry is None or not self.retry.retry_draining:
                    raise
                self._disconnect()
                last_error = exc
        raise ConnectionLostError(
            f"request failed after {attempts} attempt(s): {last_error}")

    def _readline(self, timeout_s: float | None = None) -> bytes | None:
        """One NDJSON line from the connection.

        Reads raw socket chunks into a client-owned buffer rather than
        through the buffered ``_file`` reader: a read timeout poisons a
        buffered reader for good (CPython refuses further reads from a
        timed-out object), whereas a timed-out ``recv`` loses nothing —
        a partially received frame stays buffered and the next call
        resumes it.  Returns ``b""`` on EOF; ``None`` when ``timeout_s``
        elapses first (only possible when one was given — with
        ``timeout_s=None`` the socket's default timeout propagates as
        the usual :class:`TimeoutError`).
        """
        assert self._sock is not None
        newline = self._rbuf.find(b"\n")
        previous = self._sock.gettimeout()
        if timeout_s is not None:
            self._sock.settimeout(timeout_s)
        try:
            while newline < 0:
                try:
                    chunk = self._sock.recv(65536)
                except TimeoutError:
                    if timeout_s is not None:
                        return None
                    raise
                if not chunk:
                    return b""
                self._rbuf += chunk
                newline = self._rbuf.find(
                    b"\n", len(self._rbuf) - len(chunk))
        finally:
            if timeout_s is not None and self._sock is not None:
                self._sock.settimeout(previous)
        line = bytes(self._rbuf[:newline + 1])
        del self._rbuf[:newline + 1]
        return line

    def _call_once(self, payload: dict[str, Any]) -> dict[str, Any]:
        self._file.write(protocol.encode_line(payload))
        self._file.flush()
        line = self._readline()
        if not line:
            raise ConnectionLostError("connection closed by server")
        response = protocol.decode_line(line)
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        code = error.get("code", "internal")
        message = error.get("message", "unknown server error")
        raise _ERROR_TYPES.get(code, RemoteError)(message, code)

    def close(self) -> None:
        """Close the connection.  Idempotent: safe to call any number
        of times, including after the server already went away."""
        self._disconnect()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        # A server draining while we exit can surface the flush of
        # buffered bytes as a connection error — shutdown must not turn
        # that race into a caller-visible failure.
        try:
            self.close()
        except (ConnectionLostError, OSError):
            pass

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def nwc(self, x: float, y: float, length: float, width: float, n: int,
            measure: str | None = None,
            deadline_ms: float | None = None,
            trace: dict[str, Any] | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": "nwc", "x": x, "y": y,
                                   "length": length, "width": width, "n": n}
        if measure is not None:
            payload["measure"] = measure
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if trace is not None:
            payload["trace"] = trace
        return self.call(payload)

    def knwc(self, x: float, y: float, length: float, width: float, n: int,
             k: int, m: int = 0, maintenance: str = "exact",
             measure: str | None = None,
             deadline_ms: float | None = None,
             trace: dict[str, Any] | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": "knwc", "x": x, "y": y,
                                   "length": length, "width": width,
                                   "n": n, "k": k, "m": m,
                                   "maintenance": maintenance}
        if measure is not None:
            payload["measure"] = measure
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if trace is not None:
            payload["trace"] = trace
        return self.call(payload)

    def _update(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send an update; with retries on, a request id makes it
        idempotent (the server dedupes resends by ``req``)."""
        if self.retry is not None:
            payload["req"] = self._request_id()
            return self.call(payload, idempotent=True)
        return self.call(payload, idempotent=False)

    def insert(self, oid: int, x: float, y: float,
               deadline_ms: float | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": "insert", "oid": oid, "x": x, "y": y}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._update(payload)

    def delete(self, oid: int, x: float, y: float,
               deadline_ms: float | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": "delete", "oid": oid, "x": x, "y": y}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._update(payload)

    def snapshot(self, path: str) -> dict[str, Any]:
        return self.call({"op": "snapshot", "path": path})

    def checkpoint(self) -> dict[str, Any]:
        """Ask a durable server to checkpoint and compact its WAL."""
        return self.call({"op": "checkpoint"})

    def health(self) -> dict[str, Any]:
        return self.call({"op": "health"})

    def metrics(self, fmt: str = "json",
                scope: str | None = None) -> dict[str, Any]:
        """Scrape metrics.  ``scope="fleet"`` (coordinators only) merges
        every worker's registry into one ``shard``-labelled view."""
        payload: dict[str, Any] = {"op": "metrics", "format": fmt}
        if scope is not None:
            payload["scope"] = scope
        return self.call(payload)

    # ------------------------------------------------------------------
    # Standing queries
    # ------------------------------------------------------------------
    def subscribe(self, x: float, y: float, length: float, width: float,
                  n: int, k: int | None = None, m: int = 0,
                  maintenance: str = "exact", measure: str | None = None,
                  sub: str | None = None,
                  deadline_ms: float | None = None) -> "SubscriptionStream":
        """Register a standing query and return its notification stream.

        Passing ``k`` makes it a kNWC subscription.  ``sub`` names the
        subscription (re-subscribing with the same id after a reconnect
        *resumes* it — the ack carries the current result and revision);
        omitted, the server generates an id and returns it in the ack.

        After this call the connection is in **streaming mode**: the
        server pushes unsolicited ``notify`` frames at any time, so
        issuing one-shot ops on the same client would race them.  Use a
        dedicated client per subscription stream (ordinary calls — and
        ``unsubscribe`` — belong on a different connection).
        """
        payload: dict[str, Any] = {"op": "subscribe", "x": x, "y": y,
                                   "length": length, "width": width, "n": n}
        if k is not None:
            payload["k"] = k
            payload["m"] = m
            payload["maintenance"] = maintenance
        if measure is not None:
            payload["measure"] = measure
        if sub is not None:
            payload["sub"] = sub
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if self.retry is not None:
            payload["req"] = self._request_id()
        ack = self.call(payload, idempotent=True)
        return SubscriptionStream(self, ack)

    def unsubscribe(self, sub_id: str) -> dict[str, Any]:
        """Drop a standing query by id (from any connection)."""
        return self._update({"op": "unsubscribe", "sub": sub_id})


class SubscriptionStream:
    """The notification side of one subscribed connection.

    Iterating (or :meth:`poll`-ing) yields ``notify`` frames as the
    server pushes them; frames for *any* subscription attached to the
    underlying connection are returned, and the stream's own
    ``revision``/``version``/``result`` mirror is advanced when a frame
    matches its ``sub_id``.  Iteration ends (``StopIteration``) when
    the connection closes.

    ``poll`` with a timeout is loss-free: a timeout that fires mid-frame
    leaves the partial frame in the client's receive buffer and the next
    ``poll`` resumes it, so polling with short timeouts in a loop is the
    intended idle-wait idiom.
    """

    def __init__(self, client: ServeClient, ack: dict[str, Any]) -> None:
        self.client = client
        self.ack = ack
        self.sub_id: str = ack["sub"]
        self.kind: str = ack["kind"]
        self.revision: int = ack["revision"]
        self.version: int = ack["version"]
        self.result: dict[str, Any] = ack["result"]

    def poll(self, timeout_s: float | None = None) -> dict[str, Any] | None:
        """The next pushed frame, or ``None`` when ``timeout_s`` passes
        without one (``None`` timeout blocks up to the client's socket
        timeout)."""
        if self.client._sock is None:
            raise ConnectionLostError("subscription stream is closed")
        line = self.client._readline(timeout_s)
        if line is None:
            return None
        if not line:
            raise ConnectionLostError("connection closed by server")
        frame = protocol.decode_line(line)
        if frame.get("op") != "notify":
            raise RemoteError(
                f"unexpected frame on subscription stream: {frame!r}")
        if frame.get("sub") == self.sub_id:
            self.revision = frame["revision"]
            self.version = frame["version"]
            self.result = frame["result"]
        return frame

    def __iter__(self) -> "SubscriptionStream":
        return self

    def __next__(self) -> dict[str, Any]:
        try:
            frame = self.poll()
        except ConnectionLostError:
            raise StopIteration from None
        if frame is None:
            raise StopIteration
        return frame


def wait_until_healthy(host: str, port: int, timeout_s: float = 15.0,
                       interval_s: float = 0.05,
                       shards: int | None = None) -> dict[str, Any]:
    """Poll ``health`` until the server answers (or raise ``TimeoutError``).

    Used by the load generator, the supervisor and CI to sequence "boot
    server, then drive it".  Polling backs off exponentially with
    jitter (the same :class:`~repro.serve.backoff.BackoffPolicy` the
    retry path uses) so a fleet of waiting clients does not hammer a
    server that is busy replaying its WAL.

    Args:
        host, port: Server address.
        timeout_s: Give-up deadline.
        interval_s: Initial poll delay; grows towards 1s.
        shards: When targeting a sharded coordinator, additionally wait
            until its health report fans in at least this many shard
            workers with status ``serving`` — a coordinator socket comes
            up before its workers finish WAL recovery.
    """
    policy = BackoffPolicy(initial_s=interval_s, max_s=1.0)
    deadline = time.monotonic() + timeout_s
    rng = random.Random()
    last_error: Exception | None = None
    for _attempt in retry_deadline(policy, deadline, rng):
        try:
            with ServeClient(host, port, timeout_s=timeout_s) as client:
                health = client.health()
            if shards is not None:
                serving = sum(
                    1 for entry in health.get("shards", [])
                    if entry.get("status") == "serving"
                )
                if serving < shards:
                    last_error = RemoteError(
                        f"{serving}/{shards} shard workers serving")
                    continue
            return health
        except (OSError, ServeClientError) as exc:
            last_error = exc
    raise TimeoutError(
        f"server at {host}:{port} not healthy after {timeout_s}s: {last_error}"
    )
