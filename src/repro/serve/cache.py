"""Update-aware semantic result cache for the query server.

Entries are keyed on the full query description — kind, location,
window, ``n``, measure, kNWC parameters and the engine's optimization
flags — and carry the dataset version they were computed at.  A lookup
only hits when the entry's version matches the server's current
version, so staleness is impossible by construction; the interesting
part is what happens on updates.

Every :meth:`ResultCache.put` records two *shield radii* derived from
the cached answer (see :func:`repro.serve.protocol.shield_radii_nwc`).
When the dataset changes, :meth:`note_insert`/:meth:`note_delete` walk
the live entries once: an entry whose radius strictly excludes the
updated location is *carried forward* to the new version (its cached
answer provably equals what the engine would recompute), everything
else is evicted.  Entries without a usable bound get an infinite
radius — the per-entry fallback to full invalidation.

Eviction is LRU with an optional TTL; both exist for hygiene (bounded
memory, bounded staleness of *metadata* like stats), not correctness.

The cache is not thread-safe by design: the server touches it from the
event-loop thread only.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from ..obs.metrics import MetricsRegistry

__all__ = ["CacheStats", "ResultCache"]

#: Default entry capacity.
DEFAULT_CACHE_ENTRIES = 1024

#: Cache event outcomes exported through the shared
#: ``nwc_cache_events_total`` family (``layer="serve"``); the engine's
#: batch region LRU exports the same family with ``layer="batch"``.
_EVENTS = ("hit", "miss", "expired", "invalidated", "carried", "evicted")


@dataclass(slots=True)
class _Entry:
    payload: dict[str, Any]
    version: int
    expires_at: float
    qx: float
    qy: float
    n: int
    insert_radius: float
    delete_radius: float


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Point-in-time counters of one :class:`ResultCache`."""

    entries: int
    hits: int
    misses: int
    expired: int
    invalidated: int
    carried: int
    evicted: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """LRU + TTL result cache with shielded, update-aware invalidation."""

    def __init__(
        self,
        max_entries: int = DEFAULT_CACHE_ENTRIES,
        ttl_s: float | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Args:
            max_entries: LRU capacity; 0 disables caching entirely.
            ttl_s: Entry lifetime in seconds; ``None`` means no expiry.
            metrics: Optional registry; cache events are counted into
                ``nwc_cache_events_total{layer="serve"}``.
            clock: Monotonic time source (injectable for tests).
        """
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None)")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.invalidated = 0
        self.carried = 0
        self.evicted = 0
        if metrics is None:
            self._m_events = None
        else:
            self._m_events = {
                event: metrics.counter(
                    "nwc_cache_events_total",
                    "Result/region cache events by layer",
                    labels={"layer": "serve", "outcome": event},
                )
                for event in _EVENTS
            }

    def __len__(self) -> int:
        return len(self._entries)

    def _record(self, event: str, amount: int = 1) -> None:
        attr = {"hit": "hits", "miss": "misses"}.get(event, event)
        setattr(self, attr, getattr(self, attr) + amount)
        if self._m_events is not None and amount:
            self._m_events[event].inc(amount)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: Hashable, version: int) -> dict[str, Any] | None:
        """The cached payload for ``key`` at ``version``, or ``None``.

        A version mismatch evicts the entry (it can never hit again —
        versions only grow), an expired TTL likewise; both count as
        misses.
        """
        entry = self._entries.get(key)
        if entry is None:
            self._record("miss")
            return None
        if entry.version != version:
            del self._entries[key]
            self._record("invalidated")
            self._record("miss")
            return None
        if entry.expires_at <= self._clock():
            del self._entries[key]
            self._record("expired")
            self._record("miss")
            return None
        self._entries.move_to_end(key)
        self._record("hit")
        return entry.payload

    def put(
        self,
        key: Hashable,
        version: int,
        payload: dict[str, Any],
        qx: float,
        qy: float,
        n: int,
        insert_radius: float,
        delete_radius: float,
    ) -> None:
        """Store one answer computed at ``version``.

        Args:
            qx, qy: Query location the shield radii are measured from.
            n: The query's group size (guards the delete-below-``n``
                size-threshold flip, see :meth:`note_delete`).
            insert_radius: Inserts at distance <= this invalidate the
                entry (``+inf`` = any insert, ``-inf`` = none).
            delete_radius: Same for deletes.
        """
        if self.max_entries == 0:
            return
        expires = math.inf if self.ttl_s is None else self._clock() + self.ttl_s
        self._entries[key] = _Entry(
            payload, version, expires, qx, qy, n, insert_radius, delete_radius
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._record("evicted")

    # ------------------------------------------------------------------
    # Update-aware invalidation
    # ------------------------------------------------------------------
    def note_insert(self, x: float, y: float, new_version: int) -> None:
        """Reconcile the cache with an insert at ``(x, y)``.

        Entries whose insert shield strictly excludes the new object are
        carried forward to ``new_version``; the rest are evicted.
        """
        self._reconcile(x, y, new_version, use_insert=True, new_size=None)

    def note_delete(self, x: float, y: float, new_version: int,
                    new_size: int) -> None:
        """Reconcile the cache with a delete at ``(x, y)``.

        Beyond the shield-radius rule, an entry is also evicted when the
        shrunk dataset (``new_size``) can no longer hold ``n`` objects:
        a fresh engine call would then answer with the explicit
        ``"n exceeds dataset size"`` reason, which the cached payload
        does not carry.
        """
        self._reconcile(x, y, new_version, use_insert=False, new_size=new_size)

    def _reconcile(self, x: float, y: float, new_version: int,
                   use_insert: bool, new_size: int | None) -> None:
        dropped: list[Hashable] = []
        carried = 0
        for key, entry in self._entries.items():
            radius = entry.insert_radius if use_insert else entry.delete_radius
            if new_size is not None and entry.n > new_size:
                dropped.append(key)
                continue
            if radius == -math.inf:
                entry.version = new_version
                carried += 1
                continue
            if math.hypot(x - entry.qx, y - entry.qy) > radius:
                entry.version = new_version
                carried += 1
            else:
                dropped.append(key)
        for key in dropped:
            del self._entries[key]
        self._record("carried", carried)
        self._record("invalidated", len(dropped))

    def invalidate_all(self) -> None:
        """Drop every entry (the whole-cache fallback)."""
        count = len(self._entries)
        self._entries.clear()
        self._record("invalidated", count)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Snapshot of the running counters."""
        return CacheStats(
            entries=len(self._entries), hits=self.hits, misses=self.misses,
            expired=self.expired, invalidated=self.invalidated,
            carried=self.carried, evicted=self.evicted,
        )
