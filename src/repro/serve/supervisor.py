"""Process supervisor: keep one server subprocess alive across crashes.

``repro serve --supervised`` runs the serve command in a child process
and restarts it whenever it dies uncleanly (crash, ``kill -9``, a
seeded :func:`~repro.storage.wal.crash_point`).  Combined with the
WAL + recovery boot path and client-side idempotent retries, this is
the piece that turns "the server died mid-burst" into a latency blip
instead of an outage.

Restart discipline:

* restarts follow the shared jittered
  :class:`~repro.serve.backoff.BackoffPolicy` — a crash-looping child
  is retried at an exponentially widening, bounded interval;
* a child that stays up for ``healthy_after_s`` resets the backoff, so
  a one-off crash after a week of uptime restarts promptly;
* a clean exit (code 0) means the server drained on purpose — the
  supervisor stops instead of resurrecting it;
* ``max_restarts`` (0 = unlimited) caps total restarts, after which the
  supervisor gives up and propagates the child's exit code.

SIGTERM/SIGINT to the supervisor are forwarded to the child, whose
graceful drain then produces the clean exit that stops the loop.  The
child's pid is published to ``pid_file`` (the chaos harness reads it to
aim its ``kill -9``), and each incarnation gets a ``REPRO_SERVE_GENERATION``
environment variable plus ``supervisor_*`` metrics.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field

from .backoff import BackoffPolicy

__all__ = ["Supervisor", "SupervisorConfig"]

#: Generation counter exported to each child (0 = first boot).
GENERATION_ENV = "REPRO_SERVE_GENERATION"


@dataclass(frozen=True, slots=True)
class SupervisorConfig:
    """Restart policy of one supervisor.

    Attributes:
        backoff: Jittered delay schedule between restart attempts.
        healthy_after_s: Uptime after which the child counts as healthy
            and the backoff resets.
        max_restarts: Total restarts before giving up (0 = unlimited).
        pid_file: Where to publish the live child's pid (None = don't).
    """

    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(initial_s=0.1, max_s=5.0))
    healthy_after_s: float = 5.0
    max_restarts: int = 0
    pid_file: str | None = None

    def __post_init__(self) -> None:
        if self.healthy_after_s < 0:
            raise ValueError("healthy_after_s must be non-negative")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")


class Supervisor:
    """Run ``command`` as a child process, restarting it on crashes."""

    def __init__(self, command: list[str],
                 config: SupervisorConfig | None = None,
                 metrics=None, seed: int | None = None) -> None:
        """Args:
            command: argv of the child (e.g. the serve command minus
                ``--supervised``).
            config: Restart policy (defaults: :class:`SupervisorConfig`).
            metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`
                for ``supervisor_restarts_total`` /
                ``supervisor_generation``.
            seed: Seeds backoff jitter — deterministic tests only.
        """
        self.command = list(command)
        self.config = config or SupervisorConfig()
        self.restarts = 0
        self.generation = 0
        self._rng = random.Random(seed)
        self._child: subprocess.Popen | None = None
        self._stopping = False
        if metrics is not None:
            self._m_restarts = metrics.counter(
                "supervisor_restarts_total",
                "Server child restarts after unclean exits")
            self._g_generation = metrics.gauge(
                "supervisor_generation", "Current server incarnation")
        else:
            self._m_restarts = self._g_generation = None

    # ------------------------------------------------------------------
    def _publish_pid(self, pid: int) -> None:
        if self.config.pid_file is None:
            return
        parent = os.path.dirname(self.config.pid_file)
        if parent:
            # The child usually creates this directory (it is the state
            # dir) but the supervisor publishes the pid first.
            os.makedirs(parent, exist_ok=True)
        tmp = f"{self.config.pid_file}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(f"{pid}\n")
        os.replace(tmp, self.config.pid_file)

    def _clear_pid(self) -> None:
        if self.config.pid_file is not None:
            try:
                os.unlink(self.config.pid_file)
            except OSError:
                pass

    def _spawn(self) -> subprocess.Popen:
        env = os.environ.copy()
        env[GENERATION_ENV] = str(self.generation)
        child = subprocess.Popen(self.command, env=env)
        self._publish_pid(child.pid)
        if self._g_generation is not None:
            self._g_generation.set(self.generation)
        return child

    def _forward(self, signum: int, frame=None) -> None:
        self._stopping = True
        child = self._child
        if child is not None and child.poll() is None:
            try:
                child.send_signal(signum)
            except OSError:
                pass

    def run(self, handle_signals: bool = True) -> int:
        """Supervise until the child exits cleanly (or limits trip).

        Returns the exit code to propagate: 0 after a clean child exit
        or a forwarded shutdown signal, the child's last exit code once
        ``max_restarts`` is exhausted.
        """
        previous = {}
        if handle_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                previous[sig] = signal.signal(sig, self._forward)
        try:
            attempt = 0
            while True:
                started = time.monotonic()
                self._child = self._spawn()
                code = self._child.wait()
                uptime = time.monotonic() - started
                self._child = None
                if self._stopping or code == 0:
                    self._clear_pid()
                    return 0
                self.restarts += 1
                if self._m_restarts is not None:
                    self._m_restarts.inc()
                if (self.config.max_restarts
                        and self.restarts > self.config.max_restarts):
                    self._clear_pid()
                    return code if code > 0 else 1
                if uptime >= self.config.healthy_after_s:
                    attempt = 0  # healthy run: forget the crash streak
                delay = self.config.backoff.delay(attempt, self._rng)
                print(f"[supervisor] server exited with {code} after "
                      f"{uptime:.2f}s; restart {self.restarts} "
                      f"(generation {self.generation + 1}) in {delay:.2f}s",
                      file=sys.stderr, flush=True)
                time.sleep(delay)
                if self._stopping:
                    self._clear_pid()
                    return 0
                attempt += 1
                self.generation += 1
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
