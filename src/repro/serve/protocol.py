"""Wire protocol of the query server: newline-delimited JSON.

Every request and response is one JSON object on one line (NDJSON).
Requests carry an ``op`` (``nwc``, ``knwc``, ``insert``, ``delete``,
``snapshot``, ``checkpoint``, ``health``, ``metrics``, ``subscribe``,
``unsubscribe``) plus op-specific fields and an optional opaque ``id``
the server echoes back.  ``subscribe`` registers a *standing* query:
after the ack, the server pushes unsolicited ``notify`` frames
(:func:`notify_frame`) over the same connection whenever an update
changed the answer — each carrying the fresh result, the dataset
version it was evaluated at and a per-subscription monotone
``revision``.  Updates
may additionally carry a client-generated request id ``req``: the
server remembers acknowledged ``req`` ids (and persists them through
its write-ahead log) and answers a repeated id with the original
response plus ``"deduped": true`` instead of applying the update again
— the contract that makes client retries idempotent.  Responses carry
``ok`` — ``true`` with op-specific payload fields, or ``false`` with a
typed ``error`` object (``code`` from :data:`ERROR_CODES`).

Any request may carry a ``trace`` object (``trace_id``, ``span_id``,
``sampled`` — see :class:`repro.obs.context.TraceContext`): a sampled
context makes the server record a span tree for the request and return
it (serialized, with its I/O deltas) under ``trace`` in the response,
parented at the caller's ``span_id``.  The ``metrics`` op accepts
``format`` (``json``/``prometheus``/``state``) and ``scope``
(``local``, or ``fleet`` on a shard coordinator, which scatter-scrapes
every worker and merges the registries under a ``shard`` label).

Query answers are serialized deterministically: ``json`` renders floats
with ``repr``, which round-trips IEEE doubles exactly, so a cached
response compares bit-identical to a freshly computed one whenever the
underlying :class:`~repro.core.results.NWCResult` is the same.  The
serialized ``result`` object deliberately excludes the volatile I/O
counters (those travel separately under ``stats``), because work done
is not part of the answer.

This module also derives the *shield radii* the result cache uses for
targeted invalidation — the geometric argument lives with the
serialization because both must agree on what exactly is cached (see
:mod:`repro.serve.cache` for how the radii are applied).
"""

from __future__ import annotations

import json
import math
from typing import Any

from ..core import DistanceMeasure, KNWCQuery, KNWCResult, NWCQuery, NWCResult
from ..core.results import ObjectGroup
from ..geometry import PointObject, Rect
from ..obs.context import TraceContext

__all__ = [
    "ERROR_CODES",
    "MAINTENANCE_MODES",
    "decode_line",
    "encode_line",
    "error_response",
    "group_from_payload",
    "parse_bound",
    "parse_knwc",
    "parse_nwc",
    "parse_point",
    "parse_pool_limit",
    "parse_radius",
    "parse_request_id",
    "parse_subscription",
    "parse_subscription_id",
    "parse_trace",
    "notify_frame",
    "serialize_knwc",
    "serialize_nwc",
    "shield_radii_knwc",
    "shield_radii_nwc",
]

#: Typed error codes a response can carry.
ERROR_CODES = (
    "bad_request",        # unparsable line, unknown op, invalid parameters
    "overloaded",         # admission control rejected the request
    "deadline_exceeded",  # the request expired before the engine ran it
    "draining",           # the server is shutting down gracefully
    "shard_unavailable",  # a sharded coordinator lost a required shard
    "internal",           # unexpected failure; the message names the cause
)

#: kNWC result-maintenance modes accepted on the wire.
MAINTENANCE_MODES = ("exact", "paper")

#: Maximum accepted request line (bytes); a guard against runaway input.
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A request the server cannot interpret (maps to ``bad_request``)."""


def encode_line(obj: dict[str, Any]) -> bytes:
    """One NDJSON line: compact separators, sorted keys (deterministic)."""
    return (json.dumps(obj, separators=(",", ":"), sort_keys=True) + "\n").encode()


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one request line into a dict, or raise :class:`ProtocolError`."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    return obj


def error_response(code: str, message: str, request_id=None) -> dict[str, Any]:
    """The ``ok: false`` envelope for a typed error."""
    assert code in ERROR_CODES, code
    response: dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if request_id is not None:
        response["id"] = request_id
    return response


# ----------------------------------------------------------------------
# Request parsing
# ----------------------------------------------------------------------
def _number(payload: dict, key: str) -> float:
    value = payload.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError(f"field {key!r} must be a number, got {value!r}")
    return float(value)


def _integer(payload: dict, key: str, default: int | None = None) -> int:
    value = payload.get(key, default)
    if value is None or isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {key!r} must be an integer, got {value!r}")
    return value


def parse_nwc(payload: dict[str, Any]) -> NWCQuery:
    """Build the :class:`NWCQuery` described by an ``nwc`` request."""
    measure_name = payload.get("measure", DistanceMeasure.MAX.value)
    try:
        measure = DistanceMeasure(measure_name)
    except ValueError as exc:
        raise ProtocolError(f"unknown measure {measure_name!r}") from exc
    return NWCQuery(
        _number(payload, "x"), _number(payload, "y"),
        _number(payload, "length"), _number(payload, "width"),
        _integer(payload, "n"), measure,
    )


def parse_knwc(payload: dict[str, Any]) -> tuple[KNWCQuery, str]:
    """Build the :class:`KNWCQuery` (and maintenance mode) of a ``knwc``
    request."""
    base = parse_nwc(payload)
    query = KNWCQuery(base, _integer(payload, "k"), _integer(payload, "m", 0))
    maintenance = payload.get("maintenance", "exact")
    if maintenance not in MAINTENANCE_MODES:
        raise ProtocolError(f"unknown maintenance mode {maintenance!r}")
    return query, maintenance


#: Longest accepted ``req`` id — they are persisted per-record in the
#: WAL and in the checkpoint pointer, so size is bounded on the wire.
MAX_REQUEST_ID_CHARS = 128


def parse_request_id(payload: dict[str, Any]) -> str | None:
    """The optional idempotency id (``req``) of an update request."""
    req = payload.get("req")
    if req is None:
        return None
    if not isinstance(req, str) or not req:
        raise ProtocolError("field 'req' must be a non-empty string")
    if len(req) > MAX_REQUEST_ID_CHARS:
        raise ProtocolError(
            f"field 'req' exceeds {MAX_REQUEST_ID_CHARS} characters")
    return req


def parse_bound(payload: dict[str, Any]) -> float | None:
    """The optional ``bound`` hint of a sharded scatter request.

    A coordinator forwards its running best distance (already advanced
    one ulp, see ``repro.shard.merge.next_bound``) so later shards prune
    everything that cannot beat it.  Absent or ``null`` means unseeded.
    """
    bound = payload.get("bound")
    if bound is None:
        return None
    if not isinstance(bound, (int, float)) or isinstance(bound, bool):
        raise ProtocolError(f"field 'bound' must be a number, got {bound!r}")
    bound = float(bound)
    if math.isnan(bound) or bound <= 0.0:
        raise ProtocolError("field 'bound' must be positive")
    return bound


def parse_pool_limit(payload: dict[str, Any]) -> int | None:
    """The ``limit`` of a ``knwc_pool`` request; ``null`` = unbounded."""
    limit = payload.get("limit")
    if limit is None:
        return None
    if isinstance(limit, bool) or not isinstance(limit, int) or limit <= 0:
        raise ProtocolError(
            f"field 'limit' must be a positive integer or null, got {limit!r}")
    return limit


def parse_trace(payload: dict[str, Any]) -> TraceContext | None:
    """The optional distributed-trace context of any request.

    Absent or ``null`` means untraced; malformed contexts are a
    :class:`ProtocolError` (→ ``bad_request``), never silently dropped,
    so a caller who asked for a trace cannot lose it to a typo.
    """
    raw = payload.get("trace")
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ProtocolError("field 'trace' must be an object or null")
    try:
        return TraceContext.from_wire(raw)
    except ValueError as exc:
        raise ProtocolError(f"malformed trace context: {exc}") from exc


#: Longest accepted subscription id (``sub``) — persisted in WAL
#: ``subscribe`` records and the checkpoint pointer, like ``req`` ids.
MAX_SUBSCRIPTION_ID_CHARS = 128


def parse_subscription_id(payload: dict[str, Any],
                          required: bool = False) -> str | None:
    """The subscription id (``sub``) of a subscription frame.

    ``subscribe`` may omit it (the server then generates one and
    returns it in the ack); ``unsubscribe``/``sub_track`` require it.
    """
    sub = payload.get("sub")
    if sub is None:
        if required:
            raise ProtocolError("field 'sub' is required")
        return None
    if not isinstance(sub, str) or not sub:
        raise ProtocolError("field 'sub' must be a non-empty string")
    if len(sub) > MAX_SUBSCRIPTION_ID_CHARS:
        raise ProtocolError(
            f"field 'sub' exceeds {MAX_SUBSCRIPTION_ID_CHARS} characters")
    return sub


def parse_subscription(payload: dict[str, Any]
                       ) -> tuple[str, dict[str, Any], Any, str]:
    """The standing query of a ``subscribe`` request.

    Returns ``(kind, spec, query, maintenance)`` where ``spec`` is the
    *canonical* field dict (re-parses to the same query) that the WAL
    record and the checkpoint pointer persist.  The kind is ``knwc``
    when the request carries ``k``, ``nwc`` otherwise.
    """
    if "k" in payload:
        query, maintenance = parse_knwc(payload)
        base = query.base
        spec = {"x": base.qx, "y": base.qy, "length": base.length,
                "width": base.width, "n": base.n,
                "measure": base.measure.value, "k": query.k, "m": query.m,
                "maintenance": maintenance}
        return "knwc", spec, query, maintenance
    query = parse_nwc(payload)
    spec = {"x": query.qx, "y": query.qy, "length": query.length,
            "width": query.width, "n": query.n,
            "measure": query.measure.value}
    return "nwc", spec, query, "exact"


def parse_radius(payload: dict[str, Any], key: str) -> float:
    """A shield-radius field of a ``sub_track`` request: the literal
    strings ``"always"`` (+inf — every update of that kind re-gathers)
    and ``"never"`` (-inf), or a finite non-negative number."""
    raw = payload.get(key)
    if raw == "always":
        return math.inf
    if raw == "never":
        return -math.inf
    if isinstance(raw, (int, float)) and not isinstance(raw, bool) \
            and math.isfinite(raw) and raw >= 0:
        return float(raw)
    raise ProtocolError(
        f"field {key!r} must be 'always', 'never' or a finite "
        f"non-negative number, got {raw!r}")


def notify_frame(sub_id: str, kind: str, revision: int, version: int,
                 result: dict[str, Any]) -> dict[str, Any]:
    """One server-push ``notify`` frame: the fresh answer of a standing
    query, stamped with the dataset version it was evaluated at and the
    subscription's monotone revision.  Deliberately carries no ``ok``
    field — a client mistakenly issuing one-shot calls on a streaming
    connection fails loudly instead of consuming a notification as its
    response.
    """
    return {"op": "notify", "sub": sub_id, "kind": kind,
            "revision": revision, "version": version, "result": result}


def parse_point(payload: dict[str, Any]) -> PointObject:
    """The :class:`PointObject` of an ``insert``/``delete`` request."""
    oid = _integer(payload, "oid")
    obj = PointObject(oid, _number(payload, "x"), _number(payload, "y"))
    if not (math.isfinite(obj.x) and math.isfinite(obj.y)):
        raise ProtocolError("object coordinates must be finite")
    return obj


# ----------------------------------------------------------------------
# Result serialization
# ----------------------------------------------------------------------
def _serialize_group(group: ObjectGroup) -> dict[str, Any]:
    return {
        "distance": group.distance,
        "objects": [[p.oid, p.x, p.y] for p in group.objects],
        "window": [group.window.x1, group.window.y1,
                   group.window.x2, group.window.y2],
    }


def group_from_payload(payload: dict[str, Any]) -> ObjectGroup:
    """Rebuild the :class:`ObjectGroup` serialized by
    ``_serialize_group`` — the inverse a scatter-gather coordinator
    needs to merge shard answers.  ``json`` renders floats with
    ``repr``, so the round trip is bit-exact and the rebuilt group
    compares equal to the original.
    """
    try:
        objects = tuple(
            PointObject(int(o[0]), float(o[1]), float(o[2]))
            for o in payload["objects"]
        )
        window = payload["window"]
        rect = Rect(float(window[0]), float(window[1]),
                    float(window[2]), float(window[3]))
        return ObjectGroup(objects, float(payload["distance"]), rect)
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed group payload: {exc}") from exc


def serialize_nwc(result: NWCResult) -> dict[str, Any]:
    """The deterministic answer payload of one NWC result (no stats)."""
    return {
        "found": result.found,
        "group": _serialize_group(result.group) if result.group else None,
        "reason": result.reason,
    }


def serialize_knwc(result: KNWCResult) -> dict[str, Any]:
    """The deterministic answer payload of one kNWC result (no stats)."""
    return {
        "groups": [_serialize_group(g) for g in result.groups],
        "reason": result.reason,
    }


# ----------------------------------------------------------------------
# Cache shields
# ----------------------------------------------------------------------
# An update at point u can change a cached answer only by changing some
# candidate window's group, and every window containing u lies within
# dist(q, u) ± diagonal of the query point.  Quantitatively, for a
# cached best distance d:
#
# * an inserted object can only join (or newly qualify) a window whose
#   group distance is at least dist(q, u) - diagonal under every
#   measure, so inserts farther than d + diagonal cannot beat d;
# * a deleted object can only change groups of windows it was inside,
#   and the re-selected group's distance is at least
#   dist(q, u) - 2·diagonal (the extra diagonal covers the
#   NEAREST_WINDOW measure, whose group distance may sit one diagonal
#   below its members' distances), so deletes farther than
#   d + 2·diagonal cannot produce a group beating d — and cannot have
#   touched the cached winning window either, whose objects all lie
#   within d + diagonal of q.
#
# The cache keeps an entry across an update iff dist(q, u) is *strictly*
# greater than the shield radius; strictness means a new group can never
# even tie the cached distance, so oid tie-breaking cannot flip the
# answer.  We use the conservative d + 2·diagonal for both operations.
#
# Entries without a usable bound fall back to full invalidation:
# a radius of +inf means "any such update invalidates", -inf means
# "no such update can affect this entry".
ALWAYS_INVALIDATE = math.inf
NEVER_INVALIDATE = -math.inf


def shield_radii_nwc(query: NWCQuery, result: NWCResult) -> tuple[float, float]:
    """``(insert_radius, delete_radius)`` shielding a cached NWC answer.

    A *found* answer is invalidated by updates within
    ``distance + 2·diagonal`` of the query point.  A *not found* answer
    is invalidated by any insert (a new object anywhere can create the
    first qualified window) but by no delete (removing objects can never
    create a window; the size-threshold ``reason`` flip is handled by
    the cache's ``min n`` check, see
    :meth:`repro.serve.cache.ResultCache.note_delete`).
    """
    if result.found and math.isfinite(result.distance):
        radius = result.distance + 2.0 * query.diagonal
        return radius, radius
    return ALWAYS_INVALIDATE, NEVER_INVALIDATE


def shield_radii_knwc(query: KNWCQuery, result: KNWCResult) -> tuple[float, float]:
    """``(insert_radius, delete_radius)`` shielding a cached kNWC answer.

    With a full complement of ``k`` groups, any candidate group changed
    by an update beyond ``max distance + 2·diagonal`` ranks strictly
    after every returned group, so the greedy replay picks the same
    ``k`` — the same radius shields both operations.  A *partial*
    answer (``0 < len < k``) has no such bound: a changed candidate
    anywhere may gain or lose overlap-feasibility, so both operations
    fall back to full invalidation.  An *empty* answer behaves like a
    not-found NWC answer.
    """
    if len(result.groups) == query.k:
        worst = max(g.distance for g in result.groups)
        if math.isfinite(worst):
            radius = worst + 2.0 * query.base.diagonal
            return radius, radius
        return ALWAYS_INVALIDATE, ALWAYS_INVALIDATE
    if result.groups:
        return ALWAYS_INVALIDATE, ALWAYS_INVALIDATE
    return ALWAYS_INVALIDATE, NEVER_INVALIDATE
