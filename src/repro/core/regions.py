"""Search regions, SRR shrinking and DIP/DEP generation regions.

The geometric heart of Sections 3.1-3.3.  To avoid four near-identical
code paths, object-local work happens in a *quadrant-normalized frame*:
coordinates are reflected about the query point so the processed object
``p`` always lands in the first quadrant.  Reflections are isometries, so
every distance computed in the frame equals the true distance, and
rectangles map back to real rectangles by the inverse reflection.

In the normalized frame (q at the origin, ``p`` with ``tx, ty >= 0``):

* ``p`` lies on the *right* edge of every window it generates
  (observation 1 of Section 3.1),
* partners lie on the *top* edge, at ``ty' >= ty_p``,
* the search region is ``[tx_p - l, tx_p] x [ty_p - w, ty_p + w]``,
* SRR shrinks only the upper extension (Section 3.3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..geometry import PointObject, Rect


@dataclass(frozen=True, slots=True)
class QuadrantFrame:
    """Reflection about ``(qx, qy)`` normalizing an object into Q1.

    ``sx``/``sy`` are +1 or -1.  Frame coordinates of a real point are
    ``tx = sx * (x - qx)``, ``ty = sy * (y - qy)``.
    """

    qx: float
    qy: float
    sx: float
    sy: float

    @staticmethod
    def for_object(qx: float, qy: float, p: PointObject) -> "QuadrantFrame":
        """Frame that maps ``p`` into the closed first quadrant.

        Boundary convention: an object exactly on ``x = qx`` (or
        ``y = qy``) is treated as being in the first/fourth (first/second)
        quadrant, i.e. ``s = +1``.
        """
        return QuadrantFrame(
            qx, qy, 1.0 if p.x >= qx else -1.0, 1.0 if p.y >= qy else -1.0
        )

    @property
    def quadrant(self) -> int:
        """Paper-style quadrant number (1-4) this frame normalizes."""
        if self.sx > 0:
            return 1 if self.sy > 0 else 4
        return 2 if self.sy > 0 else 3

    def to_frame(self, x: float, y: float) -> tuple[float, float]:
        """Real coordinates -> frame coordinates."""
        return (self.sx * (x - self.qx), self.sy * (y - self.qy))

    def to_real_rect(self, tx1: float, ty1: float, tx2: float, ty2: float) -> Rect:
        """Frame rectangle -> real rectangle (handles axis flips)."""
        xa = self.qx + self.sx * tx1
        xb = self.qx + self.sx * tx2
        ya = self.qy + self.sy * ty1
        yb = self.qy + self.sy * ty2
        return Rect(min(xa, xb), min(ya, yb), max(xa, xb), max(ya, yb))


@dataclass(frozen=True, slots=True)
class FrameRegion:
    """A search region expressed in the normalized frame.

    ``upper`` is the (possibly SRR-shrunk) upward extension above the
    object; the full region spans ``[tx_p - l, tx_p] x
    [ty_p - w, ty_p + upper]``.

    ``px``/``py`` keep the generating object's *real* coordinates so the
    region can be mapped back to real space exactly: a frame -> real
    round-trip of ``tx_p`` can drift by one ulp, which would exclude an
    object sitting exactly on the region edge (every generator does).
    """

    tx_p: float
    ty_p: float
    length: float
    width: float
    upper: float
    px: float
    py: float

    @property
    def x1(self) -> float:
        return self.tx_p - self.length

    @property
    def y1(self) -> float:
        return self.ty_p - self.width

    @property
    def y2(self) -> float:
        return self.ty_p + self.upper

    def mindist_origin(self) -> float:
        """Distance from the (frame) query point to the region."""
        dx = max(0.0, self.x1, -self.tx_p)
        dy = max(0.0, self.y1, -self.y2)
        return math.hypot(dx, dy)

    def to_real(self, frame: QuadrantFrame) -> Rect:
        """The region as a real-space rectangle (for window queries and
        the DEP grid check), anchored exactly on the object's real
        coordinates."""
        if frame.sx > 0:
            rx1, rx2 = self.px - self.length, self.px
        else:
            rx1, rx2 = self.px, self.px + self.length
        if frame.sy > 0:
            ry1, ry2 = self.py - self.width, self.py + self.upper
        else:
            ry1, ry2 = self.py - self.upper, self.py + self.width
        return Rect(rx1, ry1, rx2, ry2)

    def window_rect(self, frame: QuadrantFrame, partner_y: float) -> Rect:
        """Real-space candidate window with the generator on the vertical
        edge and the partner (real y coordinate) on the horizontal edge."""
        if frame.sx > 0:
            rx1, rx2 = self.px - self.length, self.px
        else:
            rx1, rx2 = self.px, self.px + self.length
        if frame.sy > 0:
            ry1, ry2 = partner_y - self.width, partner_y
        else:
            ry1, ry2 = partner_y, partner_y + self.width
        return Rect(rx1, ry1, rx2, ry2)


def search_region(frame: QuadrantFrame, p: PointObject, length: float, width: float) -> FrameRegion:
    """The full ``SR_p`` of Section 3.2 in the normalized frame."""
    tx, ty = frame.to_frame(p.x, p.y)
    return FrameRegion(tx, ty, length, width, width, p.x, p.y)


def shrink_search_region(
    region: FrameRegion, dist_best: float
) -> FrameRegion | None:
    """SRR (Section 3.3.1): drop or shrink a search region using
    ``dist_best``.

    Returns ``None`` when no window generated inside the region can have
    ``MINDIST(q, qwin) < dist_best`` (the "do not even issue the window
    query" case); otherwise the region with its upper extension reduced
    to the paper's ``w'``.
    """
    if not math.isfinite(dist_best):
        return region
    # Horizontal distance from q to every generated window (they all
    # share the x-interval [tx_p - l, tx_p]).
    dx = max(0.0, region.x1, -region.tx_p)
    if dx >= dist_best:
        return None
    dy_budget = math.sqrt(dist_best * dist_best - dx * dx)
    if dy_budget <= 0.0:
        # dx < dist_best here, so a zero budget means dist_best**2
        # underflowed (subnormal seeded bounds from a sharded probe).
        # dist_best itself upper-bounds the exact budget, so substituting
        # it keeps the shrink conservative.
        dy_budget = dist_best
    # The lowest window already has bottom edge at ty_p - w; if even it
    # is too far below/above in y, nothing in the region qualifies.
    dy_low = max(0.0, region.y1, -region.ty_p)
    if dy_low >= dy_budget:
        return None
    # A partner at ty' gives a window with bottom edge ty' - w; requiring
    # ty' - w < dy_budget caps the upward extension (the paper's w').
    upper = min(region.width, dy_budget + region.width - region.ty_p)
    if upper < 0.0:
        return None
    return FrameRegion(
        region.tx_p, region.ty_p, region.length, region.width, upper,
        region.px, region.py,
    )


def generation_region(rect: Rect, qx: float, qy: float, length: float, width: float) -> Rect:
    """Every window generated by any object inside ``rect`` lies inside
    the returned rectangle.

    Objects right of ``q`` anchor windows extending *left* by ``l``;
    objects left of ``q`` extend *right*; a rectangle straddling
    ``x = qx`` extends both ways.  Partners extend windows by ``w`` both
    up and down regardless of quadrant.  This is the corrected PR test of
    DIP (see DESIGN.md §4.3): a node is prunable iff the distance from
    ``q`` to this region is at least ``dist_best``; it is also the
    extended MBR DEP feeds to the density grid.
    """
    left = length if rect.x2 >= qx else 0.0
    right = length if rect.x1 < qx else 0.0
    return Rect(rect.x1 - left, rect.y1 - width, rect.x2 + right, rect.y2 + width)


def point_generation_region(
    x: float, y: float, qx: float, qy: float, length: float, width: float
) -> Rect:
    """Generation region of a single object (degenerate rectangle)."""
    return generation_region(Rect.from_point(x, y), qx, qy, length, width)
