"""Group NWC — nearest window cluster for a *set* of query points.

A natural extension in the spirit of the group-NN queries the paper
cites ([16], [17]): a group of friends at locations ``Q`` wants the
nearest area with ``n`` venues.  Each object is charged an aggregate
cost ``c(p) = agg_{q in Q} dist(q, p)`` (``agg`` is SUM or MAX), and a
cluster's distance is the MIN/MAX/AVG of its members' costs; the query
returns the ``n`` objects inside some ``l x w`` window minimizing that.

Single-point NWC is the special case ``|Q| = 1``.

Algorithmic notes (mirroring Section 3 of the paper):

* Objects are visited in ascending aggregate cost via a best-first
  traversal keyed by ``agg_q MINDIST(q, node)`` — a valid lower bound
  for every object below a node because each per-``q`` MINDIST is, and
  SUM/MAX are monotone aggregators.
* With multiple query points there is no single "toward q" direction,
  so the quadrant restriction of Section 3.1 does not apply.  Instead
  every cluster is enumerated through its *right-top snapped* window:
  any window can be slid left until its right edge touches the
  cluster's max-x member and down until the top edge touches the max-y
  member, without losing members.  Hence: for each visited object
  ``p``, search region ``[x_p - l, x_p] x [y_p - w, y_p + w]``,
  partners on the top edge at ``y' >= y_p``.
* Pruning uses ``agg_q MINDIST(q, rect)`` against the best cost so far;
  the stream terminates once even ``aggcost(p) - factor * diagonal``
  (``factor = |Q|`` for SUM, 1 for MAX) cannot beat the bound.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Sequence

from ..geometry import PointObject, Rect
from ..index import RStarTree
from .knwc import make_policy
from .measures import DistanceMeasure
from .results import NWCResult, ObjectGroup


class Aggregate(enum.Enum):
    """Per-object aggregation over the query points."""

    SUM = "sum"
    MAX = "max"


@dataclass(frozen=True, slots=True)
class GroupNWCQuery:
    """A group NWC query.

    Attributes:
        query_points: The locations of the group members (non-empty).
        length: Window length ``l``.
        width: Window width ``w``.
        n: Number of objects to retrieve.
        aggregate: SUM (total travel) or MAX (worst member).
        measure: MIN/MAX/AVG over the chosen objects' aggregate costs
            (Eq. 1-3 lifted to aggregate costs; the nearest-window
            measure is single-point specific and not supported here).
    """

    query_points: tuple[tuple[float, float], ...]
    length: float
    width: float
    n: int
    aggregate: Aggregate = Aggregate.SUM
    measure: DistanceMeasure = DistanceMeasure.MAX

    def __post_init__(self) -> None:
        if not self.query_points:
            raise ValueError("at least one query point is required")
        if self.length <= 0 or self.width <= 0:
            raise ValueError("window length and width must be positive")
        if self.n <= 0:
            raise ValueError("n must be positive")
        if self.measure is DistanceMeasure.NEAREST_WINDOW:
            raise ValueError("nearest-window measure is not defined for groups")

    @property
    def diagonal_slack(self) -> float:
        """Upper bound on ``aggcost(p) - agg MINDIST(win)`` for windows
        containing ``p``: ``|Q|`` diagonals for SUM, one for MAX."""
        diag = math.hypot(self.length, self.width)
        if self.aggregate is Aggregate.SUM:
            return diag * len(self.query_points)
        return diag

    def point_cost(self, x: float, y: float) -> float:
        """``c(p)``: aggregate distance from the query group to a point."""
        dists = (math.hypot(x - qx, y - qy) for qx, qy in self.query_points)
        return sum(dists) if self.aggregate is Aggregate.SUM else max(dists)

    def rect_lower_bound(self, rect: Rect) -> float:
        """Aggregate MINDIST to a rectangle — lower-bounds ``c(p)`` for
        every ``p`` inside it."""
        dists = (rect.mindist(qx, qy) for qx, qy in self.query_points)
        return sum(dists) if self.aggregate is Aggregate.SUM else max(dists)

    def group_distance(self, costs: Sequence[float]) -> float:
        """Cluster distance from the chosen members' aggregate costs."""
        if self.measure is DistanceMeasure.MAX:
            return max(costs)
        if self.measure is DistanceMeasure.MIN:
            return min(costs)
        return sum(costs) / len(costs)


def group_nwc(tree: RStarTree, query: GroupNWCQuery,
              prune: bool = True, reset_stats: bool = True) -> NWCResult:
    """Answer a group NWC query against an R*-tree.

    Args:
        tree: Index over the object set.
        query: The group query.
        prune: Apply bound-based pruning (disable to force the
            exhaustive baseline, e.g. for testing).
        reset_stats: Reset the tree's I/O counters first.
    """
    if reset_stats:
        tree.stats.reset()
    best: ObjectGroup | None = None
    best_key: tuple | None = None

    def bound() -> float:
        return best.distance if best is not None else float("inf")

    def offer(candidate: ObjectGroup) -> None:
        nonlocal best, best_key
        key = (candidate.distance, tuple(sorted(candidate.oids)))
        if best_key is None or key < best_key:
            best, best_key = candidate, key

    _group_search(tree, query, bound, offer, prune)
    return NWCResult(group=best, stats=tree.stats.snapshot())


def group_knwc(
    tree: RStarTree,
    query: GroupNWCQuery,
    k: int,
    m: int,
    maintenance: str = "exact",
    prune: bool = True,
    reset_stats: bool = True,
):
    """Group kNWC: ``k`` alternative areas for the query group, with at
    most ``m`` shared objects between any two (Definition 3 lifted to
    group queries).  Returns a
    :class:`~repro.core.results.KNWCResult`."""
    from .results import KNWCResult

    if not 0 <= m < query.n:
        raise ValueError("m must satisfy 0 <= m < n")
    if reset_stats:
        tree.stats.reset()
    policy = make_policy(maintenance, k, m)
    _group_search(tree, query, policy.bound, policy.offer, prune)
    return KNWCResult(groups=policy.finalize(), stats=tree.stats.snapshot())


def _group_search(tree: RStarTree, query: GroupNWCQuery, bound, offer,
                  prune: bool) -> None:
    """Shared best-first search loop of group NWC / group kNWC."""

    def node_filter(node) -> bool:
        if node.mbr is None:
            return False
        if not prune:
            return True
        gen = node.mbr.expand(query.length, query.width, query.length, query.width)
        return query.rect_lower_bound(gen) < bound()

    slack = query.diagonal_slack
    for p, cost_p, _leaf in _incremental_by_cost(tree, query, node_filter):
        if prune and cost_p >= bound() + slack:
            break
        sr = Rect(p.x - query.length, p.y - query.width,
                  p.x, p.y + query.width)
        if prune and query.rect_lower_bound(sr) >= bound():
            continue
        tree.stats.window_queries += 1
        members = tree.window_query(sr)
        for candidate in _candidates_in_search_region(
            query, p, members, bound() if prune else None
        ):
            offer(candidate)


def _incremental_by_cost(tree: RStarTree, query: GroupNWCQuery, node_filter):
    """Best-first object stream in ascending aggregate cost."""
    counter = itertools.count()
    root = tree.root
    if root.mbr is None:
        return
    heap: list = [(query.rect_lower_bound(root.mbr), 0, next(counter), root, None)]
    while heap:
        cost, kind, _, item, leaf = heapq.heappop(heap)
        if kind == 1:
            yield item, cost, leaf
            continue
        node = item
        if not node_filter(node):
            continue
        tree.stats.record_node(node.is_leaf)
        if node.is_leaf:
            for obj in node.entries:
                heapq.heappush(
                    heap,
                    (query.point_cost(obj.x, obj.y), 1, next(counter), obj, node),
                )
        else:
            for child in node.entries:
                if child.mbr is None:
                    continue
                heapq.heappush(
                    heap,
                    (query.rect_lower_bound(child.mbr), 0, next(counter), child, None),
                )


def _candidates_in_search_region(
    query: GroupNWCQuery,
    p: PointObject,
    members: Sequence[PointObject],
    bound: float | None,
):
    """Yield the best group of every qualified right-top-snapped window
    of generator ``p`` (those passing the ``bound`` check)."""
    entries = sorted(
        ((obj.y, query.point_cost(obj.x, obj.y), obj) for obj in members),
        key=lambda e: e[0],
    )
    ys = [e[0] for e in entries]
    start = bisect_left(ys, p.y)
    lo = 0
    for j in range(start, len(entries)):
        y_top = entries[j][0]
        bottom = y_top - query.width
        while ys[lo] < bottom:
            lo += 1
        hi = bisect_right(ys, y_top, lo=lo)
        if hi - lo < query.n:
            continue
        window = Rect(p.x - query.length, bottom, p.x, y_top)
        if bound is not None and query.rect_lower_bound(window) >= bound:
            continue
        chosen = heapq.nsmallest(query.n, entries[lo:hi],
                                 key=lambda e: (e[1], e[2].oid))
        chosen.sort(key=lambda e: (e[1], e[2].oid))
        distance = query.group_distance([e[1] for e in chosen])
        if bound is not None and distance >= bound:
            continue
        yield ObjectGroup(tuple(e[2] for e in chosen), distance, window)


def group_nwc_bruteforce(
    points: Sequence[PointObject], query: GroupNWCQuery
) -> NWCResult:
    """O(N^3) reference over the right-top-snapped window universe."""
    best: ObjectGroup | None = None
    best_key: tuple | None = None
    for a in points:
        for b in points:
            window = Rect(a.x - query.length, b.y - query.width, a.x, b.y)
            inside = [p for p in points if window.contains_object(p)]
            if len(inside) < query.n:
                continue
            costs = sorted(
                ((query.point_cost(p.x, p.y), p) for p in inside),
                key=lambda e: (e[0], e[1].oid),
            )[: query.n]
            distance = query.group_distance([c for c, _ in costs])
            group = ObjectGroup(tuple(p for _, p in costs), distance, window)
            key = (distance, tuple(sorted(group.oids)))
            if best_key is None or key < best_key:
                best, best_key = group, key
    return NWCResult(group=best, stats={})
