"""Result types for NWC and kNWC queries."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import PointObject, Rect


@dataclass(frozen=True, slots=True)
class ObjectGroup:
    """One group of ``n`` objects with its cluster distance.

    Attributes:
        objects: The group, ordered by ascending distance to ``q``.
        distance: The group's cluster distance under the query measure.
        window: A qualified window that contains the group (the one the
            search generated; other equivalent windows may exist).
    """

    objects: tuple[PointObject, ...]
    distance: float
    window: Rect

    @property
    def oids(self) -> frozenset[int]:
        """Object ids — the kNWC overlap constraint compares these."""
        return frozenset(p.oid for p in self.objects)

    def overlap(self, other: "ObjectGroup") -> int:
        """``|objs_1 ∩ objs_2|`` of Definition 3."""
        return len(self.oids & other.oids)


@dataclass(frozen=True, slots=True)
class NWCResult:
    """Answer of one NWC query.

    Attributes:
        group: The best group, or ``None`` when no qualified window
            exists anywhere in the dataset.
        stats: Snapshot of the I/O counters accumulated by the query.
        reason: Why the engine answered empty without searching, when
            it could prove the query unsatisfiable up front (``"n
            exceeds dataset size"``, ``"constrained region contains no
            objects"``); ``None`` for ordinary answers, including
            empty ones produced by an exhaustive search.
    """

    group: ObjectGroup | None
    stats: dict[str, int] = field(default_factory=dict)
    reason: str | None = None

    @property
    def found(self) -> bool:
        """True when a qualified window was found."""
        return self.group is not None

    @property
    def objects(self) -> tuple[PointObject, ...]:
        """The returned objects (empty when nothing qualified)."""
        return self.group.objects if self.group else ()

    @property
    def distance(self) -> float:
        """Cluster distance of the answer (``inf`` when not found)."""
        return self.group.distance if self.group else float("inf")

    @property
    def node_accesses(self) -> int:
        """The paper's I/O metric for this query."""
        return self.stats.get("node_accesses", 0)


@dataclass(frozen=True, slots=True)
class KNWCResult:
    """Answer of one kNWC query: up to ``k`` groups, ascending distance.

    ``reason`` mirrors :attr:`NWCResult.reason` — set only when the
    engine proved the query unsatisfiable without searching.
    """

    groups: tuple[ObjectGroup, ...]
    stats: dict[str, int] = field(default_factory=dict)
    reason: str | None = None

    def __len__(self) -> int:
        return len(self.groups)

    @property
    def distances(self) -> tuple[float, ...]:
        """Group distances in ascending order."""
        return tuple(g.distance for g in self.groups)

    @property
    def node_accesses(self) -> int:
        """The paper's I/O metric for this query."""
        return self.stats.get("node_accesses", 0)

    def max_pairwise_overlap(self) -> int:
        """Largest ``|objs_i ∩ objs_j|`` over all group pairs (should be
        at most the query's ``m``)."""
        worst = 0
        for i, a in enumerate(self.groups):
            for b in self.groups[i + 1 :]:
                worst = max(worst, a.overlap(b))
        return worst


@dataclass(frozen=True, slots=True)
class BatchStats:
    """Aggregate counters of one batched query execution.

    Attributes:
        queries: Number of queries in the batch.
        totals: Counter-wise sums of the per-query stats snapshots.
        cache_hits: Region-LRU hits (window queries answered without
            touching the tree).
        cache_misses: Region-LRU misses.
    """

    queries: int
    totals: dict[str, int]
    cache_hits: int = 0
    cache_misses: int = 0

    @staticmethod
    def collect(
        snapshots: list[dict[str, int]], cache_hits: int = 0, cache_misses: int = 0
    ) -> "BatchStats":
        """Sum per-query snapshots into one aggregate."""
        totals: dict[str, int] = {}
        for snap in snapshots:
            for name, value in snap.items():
                totals[name] = totals.get(name, 0) + value
        return BatchStats(len(snapshots), totals, cache_hits, cache_misses)

    def total(self, name: str = "node_accesses") -> int:
        """Sum of one counter over the batch."""
        return self.totals.get(name, 0)

    def mean(self, name: str = "node_accesses") -> float:
        """Per-query average of one counter."""
        if self.queries == 0:
            return 0.0
        return self.totals.get(name, 0) / self.queries

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of window queries served from the region LRU."""
        issued = self.cache_hits + self.cache_misses
        return self.cache_hits / issued if issued else 0.0


@dataclass(frozen=True, slots=True)
class NWCBatchResult:
    """Answers of one NWC batch, in query order."""

    results: tuple[NWCResult, ...]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> NWCResult:
        return self.results[index]

    @property
    def found_count(self) -> int:
        """How many queries found a qualified window."""
        return sum(1 for r in self.results if r.found)


@dataclass(frozen=True, slots=True)
class KNWCBatchResult:
    """Answers of one kNWC batch, in query order."""

    results: tuple[KNWCResult, ...]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> KNWCResult:
        return self.results[index]

    @property
    def total_groups(self) -> int:
        """Groups returned across the whole batch."""
        return sum(len(r.groups) for r in self.results)
