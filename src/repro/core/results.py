"""Result types for NWC and kNWC queries."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import PointObject, Rect


@dataclass(frozen=True, slots=True)
class ObjectGroup:
    """One group of ``n`` objects with its cluster distance.

    Attributes:
        objects: The group, ordered by ascending distance to ``q``.
        distance: The group's cluster distance under the query measure.
        window: A qualified window that contains the group (the one the
            search generated; other equivalent windows may exist).
    """

    objects: tuple[PointObject, ...]
    distance: float
    window: Rect

    @property
    def oids(self) -> frozenset[int]:
        """Object ids — the kNWC overlap constraint compares these."""
        return frozenset(p.oid for p in self.objects)

    def overlap(self, other: "ObjectGroup") -> int:
        """``|objs_1 ∩ objs_2|`` of Definition 3."""
        return len(self.oids & other.oids)


@dataclass(frozen=True, slots=True)
class NWCResult:
    """Answer of one NWC query.

    Attributes:
        group: The best group, or ``None`` when no qualified window
            exists anywhere in the dataset.
        stats: Snapshot of the I/O counters accumulated by the query.
    """

    group: ObjectGroup | None
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        """True when a qualified window was found."""
        return self.group is not None

    @property
    def objects(self) -> tuple[PointObject, ...]:
        """The returned objects (empty when nothing qualified)."""
        return self.group.objects if self.group else ()

    @property
    def distance(self) -> float:
        """Cluster distance of the answer (``inf`` when not found)."""
        return self.group.distance if self.group else float("inf")

    @property
    def node_accesses(self) -> int:
        """The paper's I/O metric for this query."""
        return self.stats.get("node_accesses", 0)


@dataclass(frozen=True, slots=True)
class KNWCResult:
    """Answer of one kNWC query: up to ``k`` groups, ascending distance."""

    groups: tuple[ObjectGroup, ...]
    stats: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.groups)

    @property
    def distances(self) -> tuple[float, ...]:
        """Group distances in ascending order."""
        return tuple(g.distance for g in self.groups)

    @property
    def node_accesses(self) -> int:
        """The paper's I/O metric for this query."""
        return self.stats.get("node_accesses", 0)

    def max_pairwise_overlap(self) -> int:
        """Largest ``|objs_i ∩ objs_j|`` over all group pairs (should be
        at most the query's ``m``)."""
        worst = 0
        for i, a in enumerate(self.groups):
            for b in self.groups[i + 1 :]:
                worst = max(worst, a.overlap(b))
        return worst
