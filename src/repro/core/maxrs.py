"""MaxRS baseline — the related-work comparator of Section 2.2.

The *maximizing range sum* problem (Choi, Chung, Tao [4]) finds the
``l x w`` window containing the most objects (more generally the largest
weight sum), with **no query location**.  The paper argues NWC is
"naturally different" because NWC optimizes proximity to ``q`` subject
to a count threshold, while MaxRS optimizes the count with no notion of
proximity.  This module provides an exact MaxRS solver so the claim can
be demonstrated (see ``tests/test_core_maxrs.py`` and the comparison
bench): the MaxRS window routinely sits far from the query point and
contains far more than ``n`` objects, whereas NWC returns the *nearest*
sufficient cluster.

The solver sweeps candidate top edges per x-slab — ``O(N * S log S)``
like :mod:`repro.core.sweep` — which is exact because some optimal
window can be slid left/down until objects touch its right and top
edges (the same snapping argument as Lemma 1).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Sequence

from ..geometry import PointObject, Rect


@dataclass(frozen=True, slots=True)
class MaxRSResult:
    """Answer of a MaxRS instance.

    Attributes:
        window: A window achieving the best count.
        count: Number of objects inside it.
        objects: The objects inside the winning window.
    """

    window: Rect
    count: int
    objects: tuple[PointObject, ...]


def maxrs(points: Sequence[PointObject], length: float, width: float) -> MaxRSResult:
    """Exact MaxRS: the ``length x width`` window holding the most objects.

    Raises:
        ValueError: On an empty dataset or non-positive window.
    """
    if not points:
        raise ValueError("MaxRS over an empty dataset is undefined")
    if length <= 0 or width <= 0:
        raise ValueError("window dimensions must be positive")
    by_x = sorted(points, key=lambda p: p.x)
    xs = [p.x for p in by_x]
    best_count = -1
    best_window: Rect | None = None
    best_members: tuple[PointObject, ...] = ()
    for anchor in by_x:
        # Right edge snapped at the anchor's x.
        lo = bisect_left(xs, anchor.x - length)
        hi = bisect_right(xs, anchor.x)
        slab = sorted(by_x[lo:hi], key=lambda p: p.y)
        slab_y = [p.y for p in slab]
        low = 0
        for j, top in enumerate(slab_y):
            bottom = top - width
            while slab_y[low] < bottom:
                low += 1
            high = bisect_right(slab_y, top, lo=low)
            count = high - low
            if count > best_count:
                best_count = count
                best_window = Rect(anchor.x - length, bottom, anchor.x, top)
                best_members = tuple(slab[low:high])
    assert best_window is not None
    return MaxRSResult(best_window, best_count, best_members)


def maxrs_bruteforce(
    points: Sequence[PointObject], length: float, width: float
) -> int:
    """O(N^3) reference: the best count over all snapped windows."""
    if not points:
        raise ValueError("MaxRS over an empty dataset is undefined")
    best = 0
    for a in points:
        for b in points:
            window = Rect(a.x - length, b.y - width, a.x, b.y)
            count = sum(1 for p in points if window.contains_object(p))
            best = max(best, count)
    return best
