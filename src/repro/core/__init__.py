"""NWC / kNWC query processing — the paper's primary contribution."""

from .bruteforce import (
    knwc_bruteforce,
    nwc_bruteforce,
    nwc_bruteforce_generated,
    qualified_window_exists,
)
from .errors import (
    BatchStateError,
    EngineConfigError,
    NWCError,
    QueryParameterError,
)
from .engine import (
    DEFAULT_EXECUTION,
    DEFAULT_GRID_CELL_SIZE,
    EXECUTION_MODES,
    NWCEngine,
)
from .group import Aggregate, GroupNWCQuery, group_knwc, group_nwc, group_nwc_bruteforce
from .kernels import RegionCache, RegionSnapshot
from .knwc import ExactGroupBuffer, PaperGroupList, make_policy
from .maxrs import MaxRSResult, maxrs, maxrs_bruteforce
from .measures import (
    DistanceMeasure,
    average_distance,
    cluster_distance,
    maximum_distance,
    minimum_distance,
    nearest_window_distance,
)
from .query import KNWCQuery, NWCQuery
from .regions import (
    FrameRegion,
    QuadrantFrame,
    generation_region,
    point_generation_region,
    search_region,
    shrink_search_region,
)
from .results import (
    BatchStats,
    KNWCBatchResult,
    KNWCResult,
    NWCBatchResult,
    NWCResult,
    ObjectGroup,
)
from .schemes import ALL_SCHEMES, OptimizationFlags, Scheme
from .sweep import knwc_sweep, nwc_sweep

__all__ = [
    "ALL_SCHEMES",
    "Aggregate",
    "BatchStateError",
    "BatchStats",
    "DEFAULT_EXECUTION",
    "DEFAULT_GRID_CELL_SIZE",
    "DistanceMeasure",
    "EXECUTION_MODES",
    "EngineConfigError",
    "ExactGroupBuffer",
    "GroupNWCQuery",
    "MaxRSResult",
    "FrameRegion",
    "KNWCBatchResult",
    "KNWCQuery",
    "KNWCResult",
    "NWCBatchResult",
    "NWCEngine",
    "NWCError",
    "NWCQuery",
    "NWCResult",
    "ObjectGroup",
    "RegionCache",
    "RegionSnapshot",
    "OptimizationFlags",
    "PaperGroupList",
    "QuadrantFrame",
    "QueryParameterError",
    "Scheme",
    "average_distance",
    "cluster_distance",
    "generation_region",
    "group_knwc",
    "group_nwc",
    "group_nwc_bruteforce",
    "knwc_bruteforce",
    "knwc_sweep",
    "make_policy",
    "maxrs",
    "maxrs_bruteforce",
    "maximum_distance",
    "minimum_distance",
    "nearest_window_distance",
    "nwc_bruteforce",
    "nwc_bruteforce_generated",
    "nwc_sweep",
    "point_generation_region",
    "qualified_window_exists",
    "search_region",
    "shrink_search_region",
]
