"""The NWC / kNWC query engine (Algorithm 1 with Sections 3.3-3.4).

One engine instance binds a tree, a scheme (Table 3) and — when the
scheme needs them — the density grid (DEP) and the pointer index (IWP).
Queries then run the incremental nearest-qualified-window search:

1. Visit objects in ascending distance to ``q`` via the tree's
   incremental NN iterator; DIP and DEP prune index nodes *before* they
   are read by vetoing them at the priority-queue front.
2. Per object ``p``: normalize into the first quadrant, build the search
   region ``SR_p``; SRR may skip ``p`` entirely or shrink the region;
   DEP may cancel the window query; otherwise fetch the region's objects
   (through IWP's backward/overlapping pointers when enabled).
3. Enumerate candidate windows by pairing ``p`` (vertical edge) with each
   partner on the horizontal edge, count members with a two-pointer sweep
   over the y-sorted region contents, and offer the ``n`` closest members
   of every qualified window to the result policy.
4. Under SRR the object stream stops once even the nearest window an
   object could generate (``dist(q, p) - diagonal``) cannot beat the
   current bound; the baseline scheme drains the whole dataset, matching
   the flat NWC curves of Figure 11.
"""

from __future__ import annotations

import heapq
import math
import time
from bisect import bisect_left, bisect_right
from typing import Iterable, Sequence

import numpy as np

from ..geometry import PointObject, Rect
from ..grid import DensityGrid
from ..index import FlatIWP, FlatRTree, IWPIndex, RStarTree
from ..obs.metrics import DEFAULT_WORK_BUCKETS, MetricsRegistry
from ..obs.trace import ATTRIBUTION_KEYS, NULL_TRACER
from . import kernels
from .errors import BatchStateError, EngineConfigError
from .knwc import CandidatePool, KNWCCandidates, _rank_key, make_policy
from .measures import DistanceMeasure
from .query import KNWCQuery, NWCQuery
from .regions import (
    FrameRegion,
    QuadrantFrame,
    generation_region,
    search_region,
    shrink_search_region,
)
from .results import (
    BatchStats,
    KNWCBatchResult,
    KNWCResult,
    NWCBatchResult,
    NWCResult,
    ObjectGroup,
)
from .schemes import OptimizationFlags, Scheme

#: Paper default: "The grid cell size is set to 25" (Section 5).
DEFAULT_GRID_CELL_SIZE = 25.0

#: Engine execution modes: the original scalar path, the numpy kernel
#: path (see :mod:`repro.core.kernels`) and the columnar path over the
#: flat struct-of-arrays index (see :mod:`repro.index.flat`); all three
#: return bit-identical answers and counters.
EXECUTION_MODES = ("python", "numpy", "columnar")

#: Default execution mode.
DEFAULT_EXECUTION = "columnar"


def _root_mbr_of(tree) -> Rect | None:
    """Root MBR of either tree layout (``None`` for an empty tree)."""
    root = getattr(tree, "root", None)
    if root is not None:
        return root.mbr
    return tree.root_mbr


class _Attribution:
    """Per-query optimization event counts (see ATTRIBUTION_KEYS).

    A plain slots bag rather than a dict so the hot-path increments are
    single attribute bumps; created only when a tracer or a metrics
    registry is attached, so the default configuration never pays for
    it.
    """

    __slots__ = tuple(key for key, _ in ATTRIBUTION_KEYS)

    def __init__(self) -> None:
        for key in self.__slots__:
            setattr(self, key, 0)

    def nonzero(self) -> dict[str, int]:
        return {key: value for key in self.__slots__
                if (value := getattr(self, key))}


class _BestGroup:
    """Result policy for plain NWC: keep the single best group."""

    def __init__(self) -> None:
        self.group: ObjectGroup | None = None

    def offer(self, group: ObjectGroup) -> None:
        if self.group is None or _rank_key(group) < _rank_key(self.group):
            self.group = group

    def bound(self) -> float:
        return self.group.distance if self.group is not None else float("inf")

    def finalize(self) -> tuple[ObjectGroup, ...]:
        return (self.group,) if self.group is not None else ()


class _OrderedBestGroup(_BestGroup):
    """:class:`_BestGroup` with a seeded prune bound and offer-order capture.

    Used by the sharded search (:meth:`NWCEngine.nwc_ordered`): the bound
    can start below ``inf`` so a coordinator-forwarded ``dist_best``
    prunes remote shards, and the kept offer records its enumeration
    order key (see :meth:`NWCEngine._offer_order`).  The single-engine
    search keeps the enumeration-*first* candidate achieving the best
    distance (later equal-distance offers are pruned by ``distance >=
    bound()`` before they reach the policy), so a coordinator merging
    shard answers picks the minimum ``(distance, order)`` — exactly the
    instance, window included, the oracle would have kept.
    """

    def __init__(self, engine: "NWCEngine",
                 initial_bound: float | None = None) -> None:
        super().__init__()
        self._engine = engine
        self._initial = float("inf") if initial_bound is None else initial_bound
        self.order: tuple[float, float] | None = None

    def offer(self, group: ObjectGroup) -> None:
        if self.group is None or _rank_key(group) < _rank_key(self.group):
            self.group = group
            self.order = self._engine._offer_order(group.window)

    def bound(self) -> float:
        best = self.group.distance if self.group is not None else float("inf")
        return best if best < self._initial else self._initial


class NWCEngine:
    """Processes NWC and kNWC queries against one dataset/tree."""

    def __init__(
        self,
        tree: RStarTree,
        scheme: Scheme | OptimizationFlags = Scheme.NWC_STAR,
        grid: DensityGrid | None = None,
        grid_cell_size: float = DEFAULT_GRID_CELL_SIZE,
        iwp: IWPIndex | None = None,
        extent: Rect | None = None,
        execution: str = DEFAULT_EXECUTION,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        flat: FlatRTree | None = None,
        flat_iwp: FlatIWP | None = None,
    ) -> None:
        """Args:
            tree: The R*-tree indexing the object set ``P`` — either the
                object-graph :class:`RStarTree` or a read-only
                :class:`~repro.index.flat.FlatRTree` snapshot (the
                latter requires ``execution="columnar"`` and rejects
                updates).
            scheme: A Table-3 scheme or explicit optimization flags.
            grid: Pre-built density grid (DEP); built on demand otherwise.
            grid_cell_size: Cell side used when the grid is auto-built.
            iwp: Pre-built pointer index (IWP); built on demand otherwise
                (scalar/numpy modes only — the columnar path builds a
                :class:`~repro.index.flat.FlatIWP` instead).
            extent: Data-space rectangle for the auto-built grid; defaults
                to the root MBR.
            execution: ``"columnar"`` (whole-frontier array search over
                the flat struct-of-arrays index, the default),
                ``"numpy"`` (array enumeration kernels over the scalar
                tree walk) or ``"python"`` (the original scalar path);
                all three return bit-identical results and counters.
            flat: Pre-built flat snapshot of ``tree`` (columnar mode);
                converted on demand otherwise.  Must share ``tree``'s
                stats counter.
            flat_iwp: Pre-built :class:`~repro.index.flat.FlatIWP` over
                ``flat``; built on demand otherwise.
            tracer: A :class:`~repro.obs.trace.QueryTracer` to record a
                span tree per query; the default no-op tracer costs one
                flag check per query.  The engine binds the tracer's
                ``stats`` to this tree's counters so spans capture I/O
                deltas.
            metrics: Shared :class:`~repro.obs.metrics.MetricsRegistry`
                for query latency/work histograms and optimization
                attribution counters; ``None`` disables recording.
        """
        if execution not in EXECUTION_MODES:
            raise EngineConfigError(
                f"execution must be one of {EXECUTION_MODES}, got {execution!r}"
            )
        if isinstance(tree, FlatRTree):
            if execution != "columnar":
                raise EngineConfigError(
                    "a FlatRTree snapshot requires execution='columnar'"
                )
            if flat is None:
                flat = tree
        self.tree = tree
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = metrics
        if metrics is not None:
            self._m_seconds = {
                kind: metrics.histogram(
                    "nwc_query_seconds", "Wall-clock query latency",
                    labels={"kind": kind},
                )
                for kind in ("nwc", "knwc")
            }
            self._m_queries = {
                kind: metrics.counter(
                    "nwc_queries_total", "Queries answered",
                    labels={"kind": kind},
                )
                for kind in ("nwc", "knwc")
            }
            self._m_node_accesses = metrics.histogram(
                "nwc_query_node_accesses",
                "R*-tree node accesses per query (the paper's metric)",
                buckets=DEFAULT_WORK_BUCKETS,
            )
            self._m_attribution = {
                key: metrics.counter(
                    "nwc_opt_events_total", "Optimization attribution events",
                    labels={"event": key},
                )
                for key, _ in ATTRIBUTION_KEYS
            }
            self._m_batch_cache = {
                outcome: metrics.counter(
                    "nwc_cache_events_total",
                    "Result/region cache events by layer",
                    labels={"layer": "batch", "outcome": outcome},
                )
                for outcome in ("hit", "miss")
            }
        self.scheme = scheme if isinstance(scheme, Scheme) else None
        self.flags = scheme.flags if isinstance(scheme, Scheme) else scheme
        self.grid = grid
        self.iwp = iwp
        self.execution = execution
        # A pre-built grid may use a different cell size than the default
        # argument; remember the real one so lazy rebuilds preserve it.
        # (Duck-typed DEP replacements without a cell size keep the default.)
        self._grid_cell_size = getattr(grid, "cell_size", grid_cell_size)
        self._iwp_dirty = False
        self._grid_dirty = False
        self._flat = flat
        self._flat_iwp = flat_iwp
        self._flat_dirty = False
        self._region_cache: kernels.RegionCache | None = None
        self._last_cache_hits = 0
        self._last_cache_misses = 0
        # Sharded-search state: a half-open ``(x1, y1, x2, y2)`` rectangle
        # restricting which objects may *anchor* windows (members still
        # come from the whole tree), plus the anchor distance / frame
        # orientation / query y of the enumerate call currently offering
        # groups (see _OrderedBestGroup and _offer_order).
        self._anchor_region: tuple[float, float, float, float] | None = None
        self._offer_anchor = 0.0
        self._offer_sy = 1.0
        self._offer_qy = 0.0
        if self.flags.dep and self.grid is None:
            grid_extent = extent if extent is not None else _root_mbr_of(tree)
            if grid_extent is None:
                raise EngineConfigError(
                    "cannot build a density grid over an empty tree"
                )
            self.grid = DensityGrid.build(tree.iter_objects(), grid_extent, grid_cell_size)
        if self.flags.iwp and self.iwp is None and execution != "columnar":
            self.iwp = IWPIndex(tree)

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------
    def insert(self, obj: PointObject) -> None:
        """Insert one object, keeping DEP/IWP structures consistent.

        The density grid is updated in place when the object falls
        inside its extent and rebuilt lazily otherwise (counting it into
        a clamped edge cell would let DEP prune a region that actually
        holds the object).  The IWP pointer index is structural and is
        rebuilt lazily before the next query.

        Raises :class:`BatchStateError` while a batch is in flight: the
        batch's region LRU holds window contents computed against the
        pre-update dataset, so a mutation mid-batch would silently serve
        stale regions to the remaining queries.
        """
        if self._region_cache is not None:
            raise BatchStateError(
                "cannot insert while a batch is in flight: the batch's "
                "region cache would serve stale window contents"
            )
        if isinstance(self.tree, FlatRTree):
            raise EngineConfigError(
                "engine is bound to a read-only flat snapshot; updates "
                "need the object-graph RStarTree"
            )
        self.tree.insert(obj)
        self._flat_dirty = True
        if self.grid is not None:
            if self.grid.extent.contains_point(obj.x, obj.y):
                try:
                    self.grid.add(obj.x, obj.y)
                except RuntimeError:  # frozen prefix-sum grid
                    self._grid_dirty = True
            else:
                self._grid_dirty = True
        if self.flags.iwp:
            self._iwp_dirty = True

    def delete(self, obj: PointObject) -> bool:
        """Delete one object; returns False when it is not indexed.

        Raises :class:`BatchStateError` while a batch is in flight, for
        the same reason as :meth:`insert`.
        """
        if self._region_cache is not None:
            raise BatchStateError(
                "cannot delete while a batch is in flight: the batch's "
                "region cache would serve stale window contents"
            )
        if isinstance(self.tree, FlatRTree):
            raise EngineConfigError(
                "engine is bound to a read-only flat snapshot; updates "
                "need the object-graph RStarTree"
            )
        if not self.tree.delete(obj):
            return False
        self._flat_dirty = True
        if self.grid is not None:
            if self.grid.extent.contains_point(obj.x, obj.y):
                try:
                    self.grid.remove(obj.x, obj.y)
                except RuntimeError:
                    self._grid_dirty = True
            else:
                self._grid_dirty = True
        if self.flags.iwp:
            self._iwp_dirty = True
        return True

    def _refresh_structures(self) -> None:
        """Rebuild DEP/IWP/flat structures invalidated by updates."""
        if self._grid_dirty and self.grid is not None:
            extent = _root_mbr_of(self.tree)
            if extent is not None:
                extent = extent.union(self.grid.extent)
                self.grid = DensityGrid.build(
                    self.tree.iter_objects(), extent, self._grid_cell_size
                )
            self._grid_dirty = False
        if self.execution == "columnar":
            if self._flat is None or self._flat_dirty:
                self._flat = (self.tree if isinstance(self.tree, FlatRTree)
                              else FlatRTree.from_tree(self.tree))
                self._flat_iwp = None
                self._flat_dirty = False
            if self.flags.iwp and self._flat_iwp is None:
                self._flat_iwp = FlatIWP(self._flat)
            self._iwp_dirty = False
        elif self._iwp_dirty and self.flags.iwp:
            self.iwp = IWPIndex(self.tree)
            self._iwp_dirty = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def nwc(
        self,
        query: NWCQuery,
        region: Rect | None = None,
        reset_stats: bool = True,
    ) -> NWCResult:
        """Answer one NWC query (Definition 1).

        Args:
            region: Optional *constrained NWC*: every returned object
                must lie inside this rectangle (the constrained-NN
                semantics of Ferhatosmanoglu et al. [8], applied to
                window clusters).  Index nodes disjoint from the region
                are pruned for free.

        A query that provably cannot be satisfied — ``n`` larger than
        the dataset, or a constrained region containing no objects —
        returns an explicit empty result (``found`` False) with its
        ``reason`` set, without touching the index.
        """
        if reset_stats:
            self.tree.stats.reset()
        reason = self._unsatisfiable(query, region)
        if reason is not None:
            return NWCResult(group=None, stats=self.tree.stats.snapshot(),
                             reason=reason)
        policy = _BestGroup()
        self._observed_search("nwc", query, policy, prune_windows=True,
                              region=region)
        return NWCResult(group=policy.group, stats=self.tree.stats.snapshot())

    def _unsatisfiable(self, query: NWCQuery, region: Rect | None) -> str | None:
        """A cheap proof that no qualified window can exist, or ``None``.

        Defined behavior for the degenerate cases the paper never
        exercises: asking for more objects than the dataset holds, or
        constraining the answer to a region the dataset does not touch,
        yields an explicit empty result instead of a full index scan.
        """
        if query.n > self.tree.size:
            return "n exceeds dataset size"
        if region is not None:
            mbr = _root_mbr_of(self.tree)
            if mbr is None or not region.intersects(mbr):
                return "constrained region contains no objects"
        return None

    def knwc(
        self,
        query: KNWCQuery,
        maintenance: str = "exact",
        region: Rect | None = None,
        reset_stats: bool = True,
    ) -> KNWCResult:
        """Answer one kNWC query (Definition 3).

        Args:
            maintenance: ``"exact"`` (greedy candidate buffer, the
                default) or ``"paper"`` (Steps 1-5 of Section 3.4); see
                DESIGN.md §4.1.
            region: Optional constrained-kNWC region (see :meth:`nwc`).
        """
        if reset_stats:
            self.tree.stats.reset()
        reason = self._unsatisfiable(query.base, region)
        if reason is not None:
            return KNWCResult(groups=(), stats=self.tree.stats.snapshot(),
                              reason=reason)
        policy = make_policy(maintenance, query.k, query.m)
        # The baseline scheme drains every object anyway; evaluating every
        # qualified window makes the unoptimized kNWC answer exactly the
        # greedy filter over the full candidate universe (testable against
        # the brute-force reference).  Optimized schemes apply the paper's
        # MINDIST-based skip.
        prune = self.flags.srr or self.flags.dip or self.flags.dep or self.flags.iwp
        self._observed_search("knwc", query.base, policy, prune_windows=prune,
                              region=region, k=query.k, m=query.m)
        return KNWCResult(groups=policy.finalize(), stats=self.tree.stats.snapshot())

    # ------------------------------------------------------------------
    # Sharded execution primitives (scatter-gather serving)
    # ------------------------------------------------------------------
    def _offer_order(self, window: Rect) -> tuple[float, float]:
        """Enumeration order key of the offer currently being made.

        The search enumerates anchors in ascending distance from ``q``
        (one contiguous block of offers per anchor, every execution
        mode), and within an anchor the candidate windows ascend by the
        top partner's frame-space y (``_enumerate_windows*`` sort region
        members by frame y before pairing).  Both components are
        properties of the *candidate*, not of tree shape, so order keys
        are comparable between a shard and the single-engine oracle: the
        merge key is ``(anchor distance, partner frame y)``, with the
        second component recovered from the offered window's horizontal
        edge.
        """
        sy = self._offer_sy
        partner_y = window.y2 if sy > 0 else window.y1
        return (self._offer_anchor, sy * (partner_y - self._offer_qy))

    def nwc_ordered(
        self,
        query: NWCQuery,
        bound: float | None = None,
        anchor_region: tuple[float, float, float, float] | None = None,
        reset_stats: bool = True,
    ) -> tuple[NWCResult, tuple[float, float] | None]:
        """One shard's slice of an NWC query, with its merge order key.

        Same search as :meth:`nwc` except that (a) only objects inside
        the half-open ``anchor_region`` rectangle may *anchor* candidate
        windows — window members still come from the whole tree, so a
        shard holding its owned region plus a halo evaluates every owned
        window on the full membership — and (b) the prune bound can be
        seeded with another shard's best.  Seed with
        ``math.nextafter(d, inf)`` to keep candidates that tie ``d``
        exactly: the coordinator needs equal-distance instances from
        every shard to reproduce the oracle's kept window.

        Returns ``(result, order)`` where ``order`` is the
        :meth:`_offer_order` key of the kept offer (``None`` when
        nothing was found).  The pruned single-engine search keeps the
        enumeration-first candidate achieving the best distance, so the
        coordinator's merge rule is: minimum ``(distance, order)``
        across shard answers.
        """
        if reset_stats:
            self.tree.stats.reset()
        reason = self._unsatisfiable(query, None)
        if reason is not None:
            return NWCResult(group=None, stats=self.tree.stats.snapshot(),
                             reason=reason), None
        policy = _OrderedBestGroup(self, bound)
        self._anchor_region = anchor_region
        self._offer_qy = query.qy
        try:
            self._observed_search("nwc", query, policy, prune_windows=True)
        finally:
            self._anchor_region = None
        return NWCResult(group=policy.group,
                         stats=self.tree.stats.snapshot()), policy.order

    def knwc_candidates(
        self,
        query: KNWCQuery,
        limit: int | None,
        bound: float | None = None,
        anchor_region: tuple[float, float, float, float] | None = None,
        reset_stats: bool = True,
    ) -> KNWCCandidates:
        """One shard's raw kNWC candidate pool for a cross-shard merge.

        Collects the shard's top-``limit`` distinct candidate groups by
        ``(distance, oids)`` rank *ignoring* the overlap constraint,
        each with its :meth:`_offer_order` key.  The coordinator replays
        the *unpruned baseline* selection — every instance of the
        order-sorted union offered ungated to a fresh ExactGroupBuffer —
        see ``repro.shard.merge`` for the replay and its exactness
        argument.  ``bound`` seeds this shard's local prune bound;
        ``anchor_region`` restricts anchors as in :meth:`nwc_ordered`.

        ``horizon`` is the distance below which the pool is provably
        complete (``None`` = fully complete): candidates at or beyond it
        may have been evicted, rank-rejected, or search-pruned, so the
        coordinator must re-fetch with ``limit=None`` whenever its
        merged greedy selection is not strictly below every shard's
        horizon.  A re-fetch may keep a ``bound`` above the replayed
        kth distance — the pool is then complete below that bound and
        reports it as the new horizon, letting the guard re-check
        cheaply before falling back to a full enumeration.

        Under the NEAREST_WINDOW measure the per-window MINDIST prefilter
        can drop an instance whose *group* distance is below the bound
        (the group's nearest covering window need not be the generated
        one), which would break the horizon guarantee — so distance-based
        pruning is disabled for that measure and completeness is governed
        by pool capacity alone.
        """
        if reset_stats:
            self.tree.stats.reset()
        reason = self._unsatisfiable(query.base, None)
        if reason is not None:
            return KNWCCandidates(groups=(), orders=(), horizon=None,
                                  reason=reason)
        policy = CandidatePool(limit, order_source=self, initial_bound=bound)
        prune = (
            (self.flags.srr or self.flags.dip or self.flags.dep
             or self.flags.iwp)
            and query.base.measure is not DistanceMeasure.NEAREST_WINDOW
        )
        self._anchor_region = anchor_region
        self._offer_qy = query.base.qy
        try:
            self._observed_search("knwc", query.base, policy,
                                  prune_windows=prune, k=query.k, m=query.m)
        finally:
            self._anchor_region = None
        return KNWCCandidates(groups=policy.finalize(),
                              orders=policy.orders(),
                              horizon=policy.horizon())

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def nwc_batch(
        self,
        queries: Iterable[NWCQuery],
        region: Rect | None = None,
        cache_size: int = kernels.DEFAULT_CACHE_SIZE,
    ) -> NWCBatchResult:
        """Answer many NWC queries with shared region state.

        Per-query answers are identical to calling :meth:`nwc` in a
        loop; the batch shares one structure-refresh and an LRU of
        window-query results keyed on the search-region rectangle, so
        queries that regenerate the same region skip the tree descent
        (and, in numpy mode, the y-sort).  Aggregate counters and cache
        effectiveness are reported in the result's ``stats``.
        """
        results = []
        for query, _cache in self._batched(queries, cache_size):
            results.append(self.nwc(query, region=region))
        return NWCBatchResult(
            results=tuple(results),
            stats=BatchStats.collect(
                [r.stats for r in results], self._last_cache_hits,
                self._last_cache_misses,
            ),
        )

    def knwc_batch(
        self,
        queries: Iterable[KNWCQuery],
        maintenance: str = "exact",
        region: Rect | None = None,
        cache_size: int = kernels.DEFAULT_CACHE_SIZE,
    ) -> KNWCBatchResult:
        """Batched :meth:`knwc`; see :meth:`nwc_batch` for semantics."""
        results = []
        for query, _cache in self._batched(queries, cache_size):
            results.append(self.knwc(query, maintenance=maintenance, region=region))
        return KNWCBatchResult(
            results=tuple(results),
            stats=BatchStats.collect(
                [r.stats for r in results], self._last_cache_hits,
                self._last_cache_misses,
            ),
        )

    def _batched(self, queries: Iterable, cache_size: int):
        """Iterate ``queries`` with the region LRU installed."""
        if self._region_cache is not None:
            raise BatchStateError("batch execution cannot be nested")
        self._refresh_structures()
        cache = kernels.RegionCache(cache_size)
        self._region_cache = cache
        self._last_cache_hits = 0
        self._last_cache_misses = 0
        try:
            for query in queries:
                yield query, cache
        finally:
            self._last_cache_hits = cache.hits
            self._last_cache_misses = cache.misses
            self._region_cache = None
            if self.metrics is not None:
                if cache.hits:
                    self._m_batch_cache["hit"].inc(cache.hits)
                if cache.misses:
                    self._m_batch_cache["miss"].inc(cache.misses)

    # ------------------------------------------------------------------
    # Core search (Algorithm 1)
    # ------------------------------------------------------------------
    def _observed_search(self, kind: str, q: NWCQuery, policy,
                         prune_windows: bool, region: Rect | None = None,
                         **extra_attrs) -> None:
        """Run :meth:`_search` under the configured tracer/registry.

        The fast path — no tracer, no registry — is a two-attribute
        check and a plain ``_search`` call, which is what keeps the
        disabled-instrumentation overhead inside the ≤2% budget.
        """
        tracer = self.tracer
        metrics = self.metrics
        if not tracer.enabled and metrics is None:
            self._search(q, policy, prune_windows, region)
            return
        attr = _Attribution()
        start = time.perf_counter()
        if tracer.enabled:
            if getattr(tracer, "stats", None) is None:
                tracer.stats = self.tree.stats
            attrs = {"scheme": self.scheme.value if self.scheme else "custom",
                     "execution": self.execution,
                     "qx": q.qx, "qy": q.qy, "length": q.length,
                     "width": q.width, "n": q.n}
            attrs.update(extra_attrs)
            root = tracer.start_span(f"query:{kind}", attrs)
            try:
                self._search(q, policy, prune_windows, region, attr=attr)
            finally:
                if root is not None:
                    root.counts.update(attr.nonzero())
                tracer.end_span(root)
        else:
            self._search(q, policy, prune_windows, region, attr=attr)
        if metrics is not None:
            self._m_seconds[kind].observe(time.perf_counter() - start)
            self._m_queries[kind].inc()
            self._m_node_accesses.observe(self.tree.stats.node_accesses)
            counters = self._m_attribution
            for key, value in attr.nonzero().items():
                counters[key].inc(value)

    def _search(self, q: NWCQuery, policy, prune_windows: bool,
                region: Rect | None = None, attr: _Attribution | None = None) -> None:
        self._refresh_structures()
        tree = self.tree
        stats = tree.stats
        flags = self.flags
        qx, qy, length, width, n = q.qx, q.qy, q.length, q.width, q.n
        diagonal = q.diagonal
        grid = self.grid
        tracer = self.tracer
        tracing = tracer.enabled

        if self.execution == "columnar":
            search_span = tracer.start_span("search") if tracing else None
            try:
                self._search_loop_columnar(
                    q, policy, prune_windows, region, attr,
                    tracing, stats, flags, grid, diagonal,
                )
            finally:
                if tracing:
                    tracer.end_span(search_span)
            return

        def node_filter(node) -> bool:
            mbr = node.mbr
            if mbr is None:
                return False
            if region is not None and not mbr.intersects(region):
                return False
            if not (flags.dip or flags.dep):
                return True
            gen = generation_region(mbr, qx, qy, length, width)
            if flags.dep and grid.is_pruned(gen, n):
                if attr is not None:
                    attr.dep_nodes_pruned += 1
                return False
            if flags.dip and gen.mindist(qx, qy) >= policy.bound():
                if attr is not None:
                    attr.dip_nodes_pruned += 1
                return False
            return True

        search_span = tracer.start_span("search") if tracing else None
        try:
            self._search_loop(
                q, policy, prune_windows, region, attr, node_filter,
                tracing, stats, flags, grid, diagonal,
            )
        finally:
            if tracing:
                tracer.end_span(search_span)

    def _search_loop(self, q, policy, prune_windows, region, attr,
                     node_filter, tracing, stats, flags, grid, diagonal) -> None:
        tree = self.tree
        tracer = self.tracer
        qx, qy, length, width, n = q.qx, q.qy, q.length, q.width, q.n
        anchor_region = self._anchor_region
        if anchor_region is not None:
            ax1, ay1, ax2, ay2 = anchor_region
        for p, dist_p, leaf in tree.incremental_nearest(qx, qy, node_filter=node_filter):
            if region is not None and not region.contains_object(p):
                continue
            bound = policy.bound()
            if flags.srr and dist_p >= bound + diagonal:
                # No window generated by p (or by any farther object) can
                # reach closer than dist(q, p) - diagonal.
                if attr is not None:
                    attr.srr_early_stop += 1
                break
            if anchor_region is not None and not (
                ax1 <= p.x < ax2 and ay1 <= p.y < ay2
            ):
                continue
            self._offer_anchor = dist_p
            frame = QuadrantFrame.for_object(qx, qy, p)
            self._offer_sy = frame.sy
            sr = search_region(frame, p, length, width)
            if flags.srr:
                shrunk = shrink_search_region(sr, bound)
                if shrunk is None:
                    if attr is not None:
                        attr.srr_objects_skipped += 1
                    continue
                if attr is not None and shrunk.upper < sr.upper:
                    attr.srr_regions_shrunk += 1
                sr = shrunk
            real_sr = sr.to_real(frame)
            if flags.dep and grid.is_pruned(real_sr, n):
                stats.window_queries_cancelled += 1
                if attr is not None:
                    attr.dep_windows_cancelled += 1
                continue
            stats.window_queries += 1
            cache = self._region_cache
            cache_key = None

            def fetch_members(leaf=leaf, real_sr=real_sr):
                if flags.iwp:
                    if attr is not None:
                        starts = self.iwp.start_nodes(leaf, real_sr)
                        if starts[0] is not tree.root:
                            attr.iwp_root_descents_avoided += 1
                        found = tree.window_query_from(starts, real_sr)
                    else:
                        found = self.iwp.window_query(leaf, real_sr)
                else:
                    found = tree.window_query(real_sr)
                if region is not None:
                    found = [m for m in found if region.contains_object(m)]
                return found

            wq_span = None
            if tracing:
                wq_span = tracer.start_span(
                    "window_query", {"oid": p.oid, "dist": dist_p}
                )
            try:
                if cache is not None:
                    cache_key = (real_sr.x1, real_sr.y1, real_sr.x2, real_sr.y2)
                    members = cache.members(cache_key, fetch_members)
                else:
                    members = fetch_members()
                enum_span = None
                if tracing:
                    enum_span = tracer.start_span(
                        "enumerate", {"members": len(members)}
                    )
                try:
                    if self.execution == "numpy":
                        self._enumerate_windows_numpy(
                            q, frame, sr, members, policy, prune_windows,
                            cache_key, attr=attr, tspan=enum_span,
                        )
                    else:
                        self._enumerate_windows(
                            q, frame, sr, members, policy, prune_windows,
                            attr=attr, tspan=enum_span,
                        )
                finally:
                    if tracing:
                        tracer.end_span(enum_span)
            finally:
                if tracing:
                    tracer.end_span(wq_span)

    def _search_loop_columnar(self, q, policy, prune_windows, region, attr,
                              tracing, stats, flags, grid, diagonal) -> None:
        """Whole-frontier twin of :meth:`_search_loop` over the flat index.

        Replays the scalar best-first search exactly — same heap keys
        ``(dist, kind, seq)``, same counter consumption, same prune and
        record order — but computes child MINDISTs and leaf-object
        distances as array passes.  Each popped leaf contributes one
        *stream* (its objects pre-sorted by ``(distance, seq)``) merged
        through a single head entry: stream keys are nondecreasing and
        every object enters the heap before its turn, so the global pop
        sequence is identical to the scalar one-entry-per-object heap.
        """
        flat = self._flat
        flat_iwp = self._flat_iwp
        tracer = self.tracer
        qx, qy, length, width, n = q.qx, q.qy, q.length, q.width, q.n
        mbrs = flat.mbrs
        xs, ys = flat.xs, flat.ys
        is_leaf = flat.is_leaf
        first = flat.first
        count = flat.count
        use_gen = flags.dip or flags.dep
        root_mbr = flat.root_mbr
        if root_mbr is None:
            return
        anchor_region = self._anchor_region
        if anchor_region is not None:
            ax1, ay1, ax2, ay2 = anchor_region
        # kind 0 = node, kind 1 = object; seq is unique so the trailing
        # payload fields are never compared.
        heap: list = [(root_mbr.mindist(qx, qy), 0, 0, 0, None)]
        seq = 1
        while heap:
            dist, kind, _, ident, stream = heapq.heappop(heap)
            if kind == 0:
                node = ident
                x1, y1, x2, y2 = mbrs[node].tolist()
                if region is not None and not (
                    x1 <= region.x2 and region.x1 <= x2
                    and y1 <= region.y2 and region.y1 <= y2
                ):
                    continue
                if use_gen:
                    gen = generation_region(
                        Rect(x1, y1, x2, y2), qx, qy, length, width)
                    if flags.dep and grid.is_pruned(gen, n):
                        if attr is not None:
                            attr.dep_nodes_pruned += 1
                        continue
                    if flags.dip and gen.mindist(qx, qy) >= policy.bound():
                        if attr is not None:
                            attr.dip_nodes_pruned += 1
                        continue
                leaf_flag = bool(is_leaf[node])
                stats.record_node(leaf_flag)
                lo = int(first[node])
                cnt = int(count[node])
                s, e = lo, lo + cnt
                if leaf_flag:
                    if cnt == 0:
                        continue
                    xlist = xs[s:e].tolist()
                    ylist = ys[s:e].tolist()
                    dxl = (xs[s:e] - qx).tolist()
                    dyl = (ys[s:e] - qy).tolist()
                    ds = [math.hypot(dxl[i], dyl[i]) for i in range(cnt)]
                    # Stable sort: equal distances keep entry order, i.e.
                    # ascending seq — the scalar heap's tie-break.
                    order = sorted(range(cnt), key=ds.__getitem__)
                    base = seq
                    seq += cnt
                    leaf_stream = (
                        [ds[i] for i in order],
                        [s + i for i in order],
                        [base + i for i in order],
                        [xlist[i] for i in order],
                        [ylist[i] for i in order],
                    )
                    heapq.heappush(
                        heap,
                        (leaf_stream[0][0], 1, leaf_stream[2][0], 0, leaf_stream),
                    )
                else:
                    sub = mbrs[s:e]
                    dxs = np.maximum(
                        np.maximum(sub[:, 0] - qx, qx - sub[:, 2]), 0.0
                    ).tolist()
                    dys = np.maximum(
                        np.maximum(sub[:, 1] - qy, qy - sub[:, 3]), 0.0
                    ).tolist()
                    cnts = count[s:e].tolist()
                    for i in range(cnt):
                        if not cnts[i]:
                            continue  # empty child == scalar "mbr is None"
                        heapq.heappush(
                            heap, (math.hypot(dxs[i], dys[i]), 0, seq, s + i, None)
                        )
                        seq += 1
                continue
            # Object pop: advance the stream, then the scalar per-object body.
            dlist, collist, seqlist, xlist, ylist = stream
            nxt = ident + 1
            if nxt < len(dlist):
                heapq.heappush(
                    heap, (dlist[nxt], 1, seqlist[nxt], nxt, stream))
            px = xlist[ident]
            py = ylist[ident]
            col = collist[ident]
            if region is not None and not region.contains_point(px, py):
                continue
            bound = policy.bound()
            if flags.srr and dist >= bound + diagonal:
                if attr is not None:
                    attr.srr_early_stop += 1
                break
            if anchor_region is not None and not (
                ax1 <= px < ax2 and ay1 <= py < ay2
            ):
                continue
            self._offer_anchor = dist
            frame = QuadrantFrame(qx, qy, 1.0 if px >= qx else -1.0,
                                  1.0 if py >= qy else -1.0)
            self._offer_sy = frame.sy
            sr = FrameRegion(frame.sx * (px - qx), frame.sy * (py - qy),
                             length, width, width, px, py)
            if flags.srr:
                shrunk = shrink_search_region(sr, bound)
                if shrunk is None:
                    if attr is not None:
                        attr.srr_objects_skipped += 1
                    continue
                if attr is not None and shrunk.upper < sr.upper:
                    attr.srr_regions_shrunk += 1
                sr = shrunk
            real_sr = sr.to_real(frame)
            if flags.dep and grid.is_pruned(real_sr, n):
                stats.window_queries_cancelled += 1
                if attr is not None:
                    attr.dep_windows_cancelled += 1
                continue
            stats.window_queries += 1
            cache = self._region_cache
            cache_key = None

            def fetch_cols(col=col, real_sr=real_sr):
                if flags.iwp:
                    starts = flat_iwp.start_ids(int(flat.leaf_of[col]), real_sr)
                    if attr is not None and starts[0] != 0:
                        attr.iwp_root_descents_avoided += 1
                    found = flat.window_query_cols(real_sr, starts)
                else:
                    found = flat.window_query_cols(real_sr)
                if region is not None and found.size:
                    fx = xs[found]
                    fy = ys[found]
                    keep = ((region.x1 <= fx) & (fx <= region.x2)
                            & (region.y1 <= fy) & (fy <= region.y2))
                    found = found[keep]
                return found

            wq_span = None
            if tracing:
                wq_span = tracer.start_span(
                    "window_query", {"oid": int(flat.oids[col]), "dist": dist}
                )
            try:
                if cache is not None:
                    cache_key = (real_sr.x1, real_sr.y1, real_sr.x2, real_sr.y2)
                    cols = cache.members(cache_key, fetch_cols)
                else:
                    cols = fetch_cols()
                enum_span = None
                if tracing:
                    enum_span = tracer.start_span(
                        "enumerate", {"members": int(cols.size)}
                    )
                try:
                    self._enumerate_windows_columnar(
                        q, frame, sr, cols, policy, prune_windows,
                        cache_key, attr=attr, tspan=enum_span,
                    )
                finally:
                    if tracing:
                        tracer.end_span(enum_span)
            finally:
                if tracing:
                    tracer.end_span(wq_span)

    def _enumerate_windows(
        self,
        q: NWCQuery,
        frame: QuadrantFrame,
        sr,
        members: Sequence[PointObject],
        policy,
        prune_windows: bool,
        attr: _Attribution | None = None,
        tspan=None,
    ) -> None:
        """Pair the search region's object with every partner (Algorithm 1
        lines 17-26) and offer each qualified window's best group."""
        stats = self.tree.stats
        n = q.n
        width = q.width
        qx, qy = q.qx, q.qy
        sy = frame.sy
        # Frame-space view of the search-region contents, sorted by frame y.
        entries = []
        for obj in members:
            dxq = obj.x - qx
            dyq = obj.y - qy
            entries.append((sy * dyq, dxq * dxq + dyq * dyq, obj))
        entries.sort(key=lambda e: e[0])
        tys = [e[0] for e in entries]
        # Selection keys (distance, oid), built once per region on first
        # use instead of once per qualified window.
        keys: list[tuple[float, int]] | None = None
        # Horizontal MINDIST component shared by every window of p.
        dx = max(0.0, sr.x1)
        dx_sq = dx * dx
        start = bisect_left(tys, sr.ty_p)
        lo = 0
        for j in range(start, len(entries)):
            ty_top = entries[j][0]
            stats.objects_examined += 1
            bottom = ty_top - width
            while tys[lo] < bottom:
                lo += 1
            hi = bisect_right(tys, ty_top, lo=lo)
            stats.windows_evaluated += 1
            if hi - lo < n:
                continue
            stats.qualified_windows += 1
            dy = bottom if bottom > 0.0 else 0.0
            mindist = math.sqrt(dx_sq + dy * dy)
            if prune_windows and mindist >= policy.bound():
                if attr is not None:
                    attr.windows_pruned_by_bound += 1
                continue
            if keys is None:
                keys = [(e[1], e[2].oid) for e in entries]
            # Tie-break equal distances on the object id so the selected
            # group is deterministic (duplicate coordinates are legal).
            # Selecting indices avoids copying the entry slice; an exactly
            # full window needs no heap at all.
            if hi - lo == n:
                sel = sorted(range(lo, hi), key=keys.__getitem__)
            else:
                sel = heapq.nsmallest(n, range(lo, hi), key=keys.__getitem__)
            objects = tuple(entries[i][2] for i in sel)
            if tspan is not None:
                t0 = time.perf_counter()
                distance = self._measure(q, objects, [entries[i][1] for i in sel])
                tspan.add_time("measure_s", time.perf_counter() - t0)
                tspan.add_time("measure_calls", 1)
            else:
                distance = self._measure(q, objects, [entries[i][1] for i in sel])
            if prune_windows and distance >= policy.bound():
                continue
            window = sr.window_rect(frame, entries[j][2].y)
            policy.offer(ObjectGroup(objects, distance, window))

    def _enumerate_windows_numpy(
        self,
        q: NWCQuery,
        frame: QuadrantFrame,
        sr,
        members: Sequence[PointObject],
        policy,
        prune_windows: bool,
        cache_key: tuple | None = None,
        attr: _Attribution | None = None,
        tspan=None,
    ) -> None:
        """Array-kernel version of :meth:`_enumerate_windows`.

        Same windows, same groups, same counters (see
        :mod:`repro.core.kernels` for the bit-identity argument); only
        the per-window top-``n`` selections remain per-window work, and
        those run as ``argpartition`` over array slices.
        """
        if not members:
            return
        stats = self.tree.stats
        n = q.n
        sy = frame.sy
        cache = self._region_cache
        if cache is not None and cache_key is not None:
            snap = cache.snapshot(cache_key, sy, members)
        else:
            snap = kernels.RegionSnapshot.build(members, sy)
        tys, dsq = snap.frame_arrays(q.qx, q.qy, sy)
        start, tops, los, his = kernels.window_spans(tys, sr.ty_p, q.width)
        examined = len(tops)
        if examined == 0:
            return
        stats.objects_examined += examined
        stats.windows_evaluated += examined
        qualified = (his - los) >= n
        stats.qualified_windows += int(qualified.sum())
        if not qualified.any():
            return
        mindists = kernels.window_mindists(tops, q.width, max(0.0, sr.x1))
        objects_sorted = snap.objects
        # The (distance, oid) selection order is shared by every window
        # of the region; built lazily on the first unpruned window.
        rank = None
        # Group objects are only needed up front by the window-based
        # measure; the point measures derive the distance from dsq alone,
        # so the tuple can wait until the group survives the bound check.
        lazy_objects = q.measure is not DistanceMeasure.NEAREST_WINDOW
        for jj in qualified.nonzero()[0].tolist():
            if prune_windows and mindists[jj] >= policy.bound():
                if attr is not None:
                    attr.windows_pruned_by_bound += 1
                continue
            if rank is None:
                rank = kernels.rank_by_key(dsq, snap.oids)
            sel = kernels.select_ranked(rank, int(los[jj]), int(his[jj]), n)
            dsqs = dsq[sel].tolist()
            if lazy_objects:
                if tspan is not None:
                    t0 = time.perf_counter()
                    distance = self._measure(q, (), dsqs)
                    tspan.add_time("measure_s", time.perf_counter() - t0)
                    tspan.add_time("measure_calls", 1)
                else:
                    distance = self._measure(q, (), dsqs)
                if prune_windows and distance >= policy.bound():
                    continue
                objects = tuple(objects_sorted[i] for i in sel.tolist())
            else:
                objects = tuple(objects_sorted[i] for i in sel.tolist())
                if tspan is not None:
                    t0 = time.perf_counter()
                    distance = self._measure(q, objects, dsqs)
                    tspan.add_time("measure_s", time.perf_counter() - t0)
                    tspan.add_time("measure_calls", 1)
                else:
                    distance = self._measure(q, objects, dsqs)
                if prune_windows and distance >= policy.bound():
                    continue
            window = sr.window_rect(frame, objects_sorted[start + jj].y)
            policy.offer(ObjectGroup(objects, distance, window))

    def _enumerate_windows_columnar(
        self,
        q: NWCQuery,
        frame: QuadrantFrame,
        sr,
        cols: np.ndarray,
        policy,
        prune_windows: bool,
        cache_key: tuple | None = None,
        attr: _Attribution | None = None,
        tspan=None,
    ) -> None:
        """Column-id version of :meth:`_enumerate_windows_numpy`.

        Same spans, same counters, same groups; members are flat-index
        column ids so objects materialize only for groups that survive
        the bound checks.  MAX/MIN measures without instrumentation take
        :meth:`_enumerate_columnar_fast`, which measures every candidate
        window of the region in one order-statistic kernel.
        """
        if cols.size == 0:
            return
        flat = self._flat
        stats = self.tree.stats
        n = q.n
        sy = frame.sy
        cache = self._region_cache
        if cache is not None and cache_key is not None:
            snap = cache.snapshot(
                cache_key, sy, cols,
                builder=lambda m, s: kernels.ColumnarSnapshot.build(flat, m, s),
            )
        else:
            snap = kernels.ColumnarSnapshot.build(flat, cols, sy)
        tys, dsq = snap.frame_arrays(q.qx, q.qy, sy)
        start, tops, los, his = kernels.window_spans(tys, sr.ty_p, q.width)
        examined = len(tops)
        if examined == 0:
            return
        stats.objects_examined += examined
        stats.windows_evaluated += examined
        qualified = (his - los) >= n
        stats.qualified_windows += int(qualified.sum())
        if not qualified.any():
            return
        mindists = kernels.window_mindists(tops, q.width, max(0.0, sr.x1))
        measure = q.measure
        if (attr is None and tspan is None
                and (measure is DistanceMeasure.MAX
                     or measure is DistanceMeasure.MIN)):
            self._enumerate_columnar_fast(
                q, frame, sr, snap, start, los, his, dsq, qualified,
                mindists, policy, prune_windows,
            )
            return
        rank = None
        lazy_objects = measure is not DistanceMeasure.NEAREST_WINDOW
        for jj in qualified.nonzero()[0].tolist():
            if prune_windows and mindists[jj] >= policy.bound():
                if attr is not None:
                    attr.windows_pruned_by_bound += 1
                continue
            if rank is None:
                rank = kernels.rank_by_key(dsq, snap.oids)
            sel = kernels.select_ranked(rank, int(los[jj]), int(his[jj]), n)
            dsqs = dsq[sel].tolist()
            if lazy_objects:
                if tspan is not None:
                    t0 = time.perf_counter()
                    distance = self._measure(q, (), dsqs)
                    tspan.add_time("measure_s", time.perf_counter() - t0)
                    tspan.add_time("measure_calls", 1)
                else:
                    distance = self._measure(q, (), dsqs)
                if prune_windows and distance >= policy.bound():
                    continue
                objects = flat.objects_at(snap.cols[sel])
            else:
                objects = flat.objects_at(snap.cols[sel])
                if tspan is not None:
                    t0 = time.perf_counter()
                    distance = self._measure(q, objects, dsqs)
                    tspan.add_time("measure_s", time.perf_counter() - t0)
                    tspan.add_time("measure_calls", 1)
                else:
                    distance = self._measure(q, objects, dsqs)
                if prune_windows and distance >= policy.bound():
                    continue
            window = sr.window_rect(frame, float(snap.ys[start + jj]))
            policy.offer(ObjectGroup(objects, distance, window))

    def _enumerate_columnar_fast(
        self, q, frame, sr, snap, start, los, his, dsq, qualified,
        mindists, policy, prune_windows,
    ) -> None:
        """Measure every candidate window of the region in one pass.

        For MAX (``k = n``) and MIN (``k = 1``) the group distance of a
        window is the ``k``-th smallest squared distance in its y-span,
        so :func:`~repro.core.kernels.window_kth_dsq` computes all of
        them at once and only surviving windows pay for selection and
        object materialization.

        NWC (:class:`_BestGroup` with pruning) replays the sequential
        offer chain exactly: a window is offered iff its distance beats
        the running minimum of the entry bound and all earlier candidate
        distances — the scalar loop's bound after any prefix equals that
        running minimum, because non-offered windows sit at or above it
        and equal distances are never offered (``distance >= bound``
        skips).  The mindist prefilter against the entry bound is safe
        for the same reason: ``distance >= mindist``, so a window whose
        mindist already misses the entry bound can never be offered.
        """
        flat = self._flat
        n = q.n
        k = n if q.measure is DistanceMeasure.MAX else 1
        if isinstance(policy, _BestGroup) and prune_windows:
            entry = policy.bound()
            cand = np.flatnonzero(qualified & (mindists < entry))
            if cand.size == 0:
                return
            clos = los[cand]
            chis = his[cand]
            if math.isfinite(entry):
                # Region-level floor: the k-th smallest distance over the
                # union span lower-bounds every window's distance.
                seg = dsq[int(clos.min()):int(chis.max())]
                floor_sq = (seg.min() if k == 1
                            else np.partition(seg, k - 1)[k - 1])
                if math.sqrt(floor_sq) >= entry:
                    return
            dists = np.sqrt(kernels.window_kth_dsq(dsq, clos, chis, k))
            prev = np.minimum.accumulate(
                np.concatenate(([entry], dists)))[:-1]
            offered = np.flatnonzero(dists < prev)
            if offered.size == 0:
                return
            rank = kernels.rank_by_key(dsq, snap.oids)
            dlist = dists.tolist()
            for pos in offered.tolist():
                jj = int(cand[pos])
                sel = kernels.select_ranked(rank, int(los[jj]), int(his[jj]), n)
                objects = flat.objects_at(snap.cols[sel])
                window = sr.window_rect(frame, float(snap.ys[start + jj]))
                policy.offer(ObjectGroup(objects, dlist[pos], window))
            return
        # kNWC (or unpruned) path: the policy bound moves in ways the
        # offer chain cannot precompute, so walk candidates sequentially
        # with live bound checks; distances are still batch-computed.
        idxs = np.flatnonzero(qualified)
        dlist = np.sqrt(
            kernels.window_kth_dsq(dsq, los[idxs], his[idxs], k)).tolist()
        mlist = mindists[idxs].tolist()
        rank = None
        for pos, jj in enumerate(idxs.tolist()):
            if prune_windows:
                bound = policy.bound()
                if mlist[pos] >= bound or dlist[pos] >= bound:
                    continue
            if rank is None:
                rank = kernels.rank_by_key(dsq, snap.oids)
            sel = kernels.select_ranked(rank, int(los[jj]), int(his[jj]), n)
            objects = flat.objects_at(snap.cols[sel])
            window = sr.window_rect(frame, float(snap.ys[start + jj]))
            policy.offer(ObjectGroup(objects, dlist[pos], window))

    @staticmethod
    def _measure(
        q: NWCQuery, objects: tuple[PointObject, ...], dsqs: Sequence[float]
    ) -> float:
        """Cluster distance of a group; ``dsqs`` are the squared
        distances to ``q``, ascending (tie-broken by oid like
        ``objects``)."""
        measure = q.measure
        if measure is DistanceMeasure.MAX:
            return math.sqrt(dsqs[-1])
        if measure is DistanceMeasure.MIN:
            return math.sqrt(dsqs[0])
        if measure is DistanceMeasure.AVG:
            return sum(math.sqrt(d) for d in dsqs) / len(dsqs)
        return Rect.nearest_window_distance(objects, q.qx, q.qy, q.length, q.width)
