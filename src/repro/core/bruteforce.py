"""Brute-force reference algorithms.

Deliberately independent of the engine's code paths (linear scans, no
R-tree, no frames) so tests compare two implementations that share
nothing but the problem definition.

Two candidate-window universes appear:

* :func:`enumerate_snapped_windows` — every window with an edge snapped
  to an object coordinate on *both* axes, in all four combinations.
  By the sliding argument behind Lemma 1, the optimal cluster is the
  best group over this universe; used to verify NWC answers.
* :func:`enumerate_generated_windows` — the quadrant-restricted
  generation rule of Section 3.2 (the engine's universe); used to verify
  kNWC answers group-for-group, since kNWC's k-th group depends on the
  exact universe searched (see DESIGN.md §4.1).
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from ..geometry import PointObject, Rect
from .knwc import make_policy
from .measures import cluster_distance
from .query import KNWCQuery, NWCQuery
from .results import KNWCResult, NWCResult, ObjectGroup


def _group_from_window(
    query: NWCQuery, window: Rect, points: Sequence[PointObject]
) -> ObjectGroup | None:
    """The ``n``-closest-member group of ``window``; None if unqualified."""
    inside = [p for p in points if window.contains_object(p)]
    if len(inside) < query.n:
        return None
    # Object id breaks distance ties, matching the engine's selection.
    inside.sort(key=lambda p: ((p.x - query.qx) ** 2 + (p.y - query.qy) ** 2, p.oid))
    chosen = tuple(inside[: query.n])
    distance = cluster_distance(
        query.qx, query.qy, chosen, query.measure, query.length, query.width
    )
    return ObjectGroup(chosen, distance, window)


def enumerate_snapped_windows(
    points: Sequence[PointObject], length: float, width: float
) -> Iterator[Rect]:
    """All ``l x w`` windows edge-snapped to object coordinates (4 combos
    per object pair)."""
    xs = sorted({p.x for p in points})
    ys = sorted({p.y for p in points})
    for x in xs:
        for y in ys:
            yield Rect(x - length, y - width, x, y)  # right+top snapped
            yield Rect(x - length, y, x, y + width)  # right+bottom
            yield Rect(x, y - width, x + length, y)  # left+top
            yield Rect(x, y, x + length, y + width)  # left+bottom


def enumerate_generated_windows(
    points: Sequence[PointObject], query: NWCQuery
) -> Iterator[Rect]:
    """The engine's window universe: for every object ``p``, windows with
    ``p`` on the quadrant-determined vertical edge and a partner from
    ``SR_p`` on the quadrant-determined horizontal edge."""
    qx, qy = query.qx, query.qy
    length, width = query.length, query.width
    for p in points:
        if p.x >= qx:
            x1, x2 = p.x - length, p.x
        else:
            x1, x2 = p.x, p.x + length
        sr = Rect(x1, p.y - width, x2, p.y + width)
        for partner in points:
            if not sr.contains_object(partner):
                continue
            if p.y >= qy:
                if partner.y < p.y:
                    continue
                yield Rect(x1, partner.y - width, x2, partner.y)
            else:
                if partner.y > p.y:
                    continue
                yield Rect(x1, partner.y, x2, partner.y + width)


def nwc_bruteforce(points: Sequence[PointObject], query: NWCQuery) -> NWCResult:
    """Exact NWC answer over the snapped-window universe."""
    best: ObjectGroup | None = None
    for window in enumerate_snapped_windows(points, query.length, query.width):
        group = _group_from_window(query, window, points)
        if group is None:
            continue
        if best is None or _better(group, best):
            best = group
    return NWCResult(group=best, stats={})


def nwc_bruteforce_generated(points: Sequence[PointObject], query: NWCQuery) -> NWCResult:
    """Exact NWC answer over the generation-rule universe (for testing
    that the Section 3.2 restriction loses nothing — Lemma 1)."""
    best: ObjectGroup | None = None
    for window in enumerate_generated_windows(points, query):
        group = _group_from_window(query, window, points)
        if group is None:
            continue
        if best is None or _better(group, best):
            best = group
    return NWCResult(group=best, stats={})


def knwc_bruteforce(
    points: Sequence[PointObject], query: KNWCQuery, maintenance: str = "exact"
) -> KNWCResult:
    """kNWC answer: every group of the generation-rule universe pushed
    through the chosen maintenance policy.

    With ``maintenance="exact"`` the result is the greedy-by-distance
    filter over the full candidate set — order independent, hence exactly
    comparable with an unpruned engine run.
    """
    policy = make_policy(maintenance, query.k, query.m)
    for window in enumerate_generated_windows(points, query.base):
        group = _group_from_window(query.base, window, points)
        if group is not None:
            policy.offer(group)
    return KNWCResult(groups=policy.finalize(), stats={})


def _better(a: ObjectGroup, b: ObjectGroup) -> bool:
    """Deterministic comparison: distance then object ids."""
    ka = (a.distance, tuple(sorted(a.oids)))
    kb = (b.distance, tuple(sorted(b.oids)))
    return ka < kb


def qualified_window_exists(
    points: Sequence[PointObject], length: float, width: float, n: int
) -> bool:
    """True when at least one ``l x w`` window holds ``n`` objects."""
    if n <= 0:
        return True
    if len(points) < n:
        return False
    for window in enumerate_snapped_windows(points, length, width):
        if sum(1 for p in points if window.contains_object(p)) >= n:
            return True
    return False
