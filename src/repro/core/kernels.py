"""Vectorized array kernels for the NWC hot path.

The scalar engine path (``NWCEngine._enumerate_windows``) spends almost
all of its time in per-object Python work: building ``(ty, dsq, obj)``
tuples, sorting them, bisecting the y-sorted list once per candidate
partner and running ``heapq.nsmallest`` once per qualified window.  The
kernels below compute the same quantities as whole-array numpy
operations over one search region's members:

* :class:`RegionSnapshot` — the frame transform and the stable y-sort,
  reusable across queries because the sort order depends only on the
  frame's y-sign, not on the query point;
* :func:`window_spans` — the two-pointer window counting sweep
  (``searchsorted`` twice instead of a Python loop per partner);
* :func:`window_mindists` — MINDIST lower bounds of every candidate
  window at once;
* :func:`select_group` — top-``n`` selection by ``(distance, oid)`` via
  ``np.argpartition`` with an explicit tie fix-up so the result is
  bit-identical to ``heapq.nsmallest`` with a composite key.

Every kernel mirrors the scalar code operation for operation (same IEEE
arithmetic, same stable orderings, same boundary conventions), which is
what lets the engine cross-check the two execution modes for identical
groups, distances and counters.

:class:`RegionCache` is the small LRU used by the batch query API: it
memoizes window-query results (and their y-sorted snapshots) keyed by
the real-space query rectangle, so consecutive queries in a batch that
regenerate the same search region skip both the tree descent and the
re-sort.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..geometry import PointObject

#: Default capacity of the batch-mode region LRU.
DEFAULT_CACHE_SIZE = 256


@dataclass(slots=True)
class RegionSnapshot:
    """Frame-y-sorted view of one search region's members.

    Position ``i`` of every array describes the member with the ``i``-th
    smallest frame-y coordinate; ties keep the fetch order (a stable
    sort), matching the scalar path's ``list.sort``.  The sort key is
    ``sy * y``: frame y is ``sy * (y - qy)``, a strictly increasing
    transform of it, so one snapshot serves every query point that
    normalizes into the same vertical half-plane.
    """

    objects: list[PointObject]
    xs: np.ndarray
    ys: np.ndarray
    oids: np.ndarray

    @classmethod
    def build(cls, members: Sequence[PointObject], sy: float) -> "RegionSnapshot":
        count = len(members)
        xs = np.fromiter((p.x for p in members), np.float64, count)
        ys = np.fromiter((p.y for p in members), np.float64, count)
        oids = np.fromiter((p.oid for p in members), np.int64, count)
        order = np.argsort(ys if sy > 0 else -ys, kind="stable")
        objects = [members[i] for i in order.tolist()]
        return cls(objects, xs[order], ys[order], oids[order])

    def __len__(self) -> int:
        return len(self.objects)

    def frame_arrays(self, qx: float, qy: float, sy: float) -> tuple[np.ndarray, np.ndarray]:
        """``(tys, dsq)`` for a query at ``(qx, qy)``.

        ``tys`` are frame-y coordinates in ascending order; ``dsq`` are
        squared Euclidean distances to the query point, aligned.
        """
        dy = self.ys - qy
        dx = self.xs - qx
        return sy * dy, dx * dx + dy * dy


@dataclass(slots=True)
class ColumnarSnapshot:
    """Frame-y-sorted view of one search region in flat-index columns.

    The columnar twin of :class:`RegionSnapshot`: instead of a list of
    ``PointObject``\\ s it keeps the flat index's column ids, so group
    materialization can stay lazy until a window actually survives the
    bound checks.  Sort semantics are identical (stable by ``sy * y``).
    """

    cols: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    oids: np.ndarray

    @classmethod
    def build(cls, flat, cols: np.ndarray, sy: float) -> "ColumnarSnapshot":
        xs = flat.xs[cols]
        ys = flat.ys[cols]
        oids = flat.oids[cols]
        order = np.argsort(ys if sy > 0 else -ys, kind="stable")
        return cls(cols[order], xs[order], ys[order], oids[order])

    def __len__(self) -> int:
        return len(self.cols)

    def frame_arrays(self, qx: float, qy: float, sy: float) -> tuple[np.ndarray, np.ndarray]:
        """``(tys, dsq)`` for a query at ``(qx, qy)`` (see
        :meth:`RegionSnapshot.frame_arrays`)."""
        dy = self.ys - qy
        dx = self.xs - qx
        return sy * dy, dx * dx + dy * dy


def window_kth_dsq(dsq: np.ndarray, los: np.ndarray, his: np.ndarray,
                   k: int, budget: int = 4_000_000) -> np.ndarray:
    """``k``-th smallest ``dsq`` inside every span ``[los[j], his[j])``.

    The whole-frontier group-distance kernel: for MAX (``k = n``) and
    MIN (``k = 1``) measures the group distance of a window is just an
    order statistic of the squared distances in its y-span, so all
    qualified windows of a region are measured in one masked-matrix
    partition instead of one selection per window.  Spans must satisfy
    ``his - los >= k``.  ``budget`` caps the transient matrix size
    (elements per chunk).
    """
    m = los.shape[0]
    out = np.empty(m, dtype=np.float64)
    if m == 0:
        return out
    widest = int((his - los).max())
    step = max(1, budget // max(widest, 1))
    for s in range(0, m, step):
        e = min(m, s + step)
        lo = los[s:e]
        hi = his[s:e]
        w = int((hi - lo).max())
        idx = lo[:, None] + np.arange(w, dtype=np.int64)[None, :]
        mask = idx < hi[:, None]
        np.clip(idx, 0, dsq.size - 1, out=idx)
        vals = np.where(mask, dsq[idx], np.inf)
        if k == 1:
            out[s:e] = vals.min(axis=1)
        else:
            out[s:e] = np.partition(vals, k - 1, axis=1)[:, k - 1]
    return out


def window_spans(
    tys: np.ndarray, ty_p: float, width: float
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Candidate-window extents of every partner at or above ``ty_p``.

    Returns ``(start, tops, los, his)``: partners are ``tys[start:]``
    (their frame-y values in ``tops``), and the window anchored at
    ``tops[j]`` spans the y-sorted positions ``[los[j], his[j])`` — the
    vectorized equivalent of the scalar two-pointer sweep plus
    ``bisect_right`` per partner.
    """
    start = int(np.searchsorted(tys, ty_p, side="left"))
    tops = tys[start:]
    los = np.searchsorted(tys, tops - width, side="left")
    his = np.searchsorted(tys, tops, side="right")
    return start, tops, los, his


def window_mindists(tops: np.ndarray, width: float, dx: float) -> np.ndarray:
    """MINDIST from the query point to every candidate window.

    ``dx`` is the horizontal component shared by all windows of one
    search region (``max(0, x1)`` in frame space); the vertical
    component is the window's bottom edge clamped at the axis.
    """
    dys = np.maximum(tops - width, 0.0)
    return np.sqrt(dx * dx + dys * dys)


def select_group(
    dsq: np.ndarray, oids: np.ndarray, lo: int, hi: int, n: int
) -> np.ndarray:
    """Positions of the ``n`` members of window ``[lo, hi)`` with the
    smallest ``(squared distance, oid)`` key, in ascending key order.

    ``np.argpartition`` partitions on the distance alone, so ties at the
    cut value are re-resolved by oid explicitly — the returned set and
    order are exactly those of ``heapq.nsmallest`` with the composite
    key.  Requires ``hi - lo >= n``.
    """
    if hi - lo == n:
        local = np.arange(lo, hi)
    else:
        d = dsq[lo:hi]
        part = np.argpartition(d, n - 1)[:n]
        cut = d[part].max()
        strict = np.flatnonzero(d < cut)
        ties = np.flatnonzero(d == cut)
        need = n - strict.size
        if ties.size > need:
            ties = ties[np.argsort(oids[lo + ties], kind="stable")[:need]]
        local = np.concatenate((strict, ties)) + lo
    order = np.lexsort((oids[local], dsq[local]))
    return local[order]


def rank_by_key(dsq: np.ndarray, oids: np.ndarray) -> np.ndarray:
    """Positions of a region's members ordered by ``(distance, oid)``.

    One lexsort per region amortizes the selection order across every
    qualified window: :func:`select_ranked` then reduces each top-``n``
    selection to a boolean mask over this permutation.
    """
    return np.lexsort((oids, dsq))


def select_ranked(rank: np.ndarray, lo: int, hi: int, n: int) -> np.ndarray:
    """First ``n`` members of window ``[lo, hi)`` in region rank order.

    Equivalent to :func:`select_group` (same positions, same order) —
    filtering the region-global ``(distance, oid)`` permutation to the
    window's y-span keeps members sorted by the selection key.
    """
    window = rank[(rank >= lo) & (rank < hi)]
    return window[:n]


class RegionCache:
    """Small LRU over window-query results, keyed by the query rectangle.

    Used only inside batch query execution: queries in a batch that
    build the same search region (same generating object, same window
    parameters, same SRR extension) reuse the fetched member list —
    skipping the tree descent — and, in numpy mode, the y-sorted
    :class:`RegionSnapshot` as well.  ``window_queries`` counters still
    advance on hits; only the node I/O is saved.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._members: OrderedDict[tuple, list[PointObject]] = OrderedDict()
        self._snapshots: dict[tuple, RegionSnapshot] = {}

    def __len__(self) -> int:
        return len(self._members)

    def members(
        self, key: tuple, fetch: Callable[[], list[PointObject]]
    ) -> list[PointObject]:
        """The window-query result for ``key``, fetching on a miss."""
        found = self._members.get(key)
        if found is not None:
            self.hits += 1
            self._members.move_to_end(key)
            return found
        self.misses += 1
        found = fetch()
        self._members[key] = found
        if len(self._members) > self.maxsize:
            evicted, _ = self._members.popitem(last=False)
            self._snapshots.pop((evicted, 1.0), None)
            self._snapshots.pop((evicted, -1.0), None)
        return found

    def snapshot(
        self, key: tuple, sy: float, members, builder: Callable | None = None
    ) -> RegionSnapshot | ColumnarSnapshot:
        """The y-sorted snapshot of ``members`` for y-sign ``sy``.

        ``builder`` overrides the default :class:`RegionSnapshot`
        construction — the columnar path passes a
        :class:`ColumnarSnapshot` factory over its column ids.
        """
        snap = self._snapshots.get((key, sy))
        if snap is None:
            if builder is None:
                snap = RegionSnapshot.build(members, sy)
            else:
                snap = builder(members, sy)
            if key in self._members:
                self._snapshots[(key, sy)] = snap
        return snap
