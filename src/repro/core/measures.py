"""The four cluster distance measures of Section 2.1 (Equations 1-4).

``dist(q, {p_1, ..., p_n})`` maps a query point and a candidate object
group to a scalar.  The NWC machinery only requires that
``MINDIST(q, qwin) <= dist(q, group)`` for every group drawn from a
qualified window ``qwin`` — true for all four measures — so the engine is
parameterized over the measure.  The paper never singles one out for its
experiments; this library defaults to :attr:`DistanceMeasure.MAX`
(every returned object is within ``distance`` of ``q``).
"""

from __future__ import annotations

import enum
import math
from typing import Sequence

from ..geometry import PointObject, Rect


class DistanceMeasure(enum.Enum):
    """Selector for Equations (1)-(4)."""

    MIN = "min"
    MAX = "max"
    AVG = "avg"
    NEAREST_WINDOW = "nearest_window"


def minimum_distance(qx: float, qy: float, objects: Sequence[PointObject]) -> float:
    """Equation (1): distance to the closest group member."""
    _require_group(objects)
    return min(math.hypot(p.x - qx, p.y - qy) for p in objects)


def maximum_distance(qx: float, qy: float, objects: Sequence[PointObject]) -> float:
    """Equation (2): distance to the farthest group member."""
    _require_group(objects)
    return max(math.hypot(p.x - qx, p.y - qy) for p in objects)


def average_distance(qx: float, qy: float, objects: Sequence[PointObject]) -> float:
    """Equation (3): mean distance over the group."""
    _require_group(objects)
    return sum(math.hypot(p.x - qx, p.y - qy) for p in objects) / len(objects)


def nearest_window_distance(
    qx: float, qy: float, objects: Sequence[PointObject], length: float, width: float
) -> float:
    """Equation (4): the least ``MINDIST(q, qwin)`` over every ``l x w``
    window that contains the whole group."""
    _require_group(objects)
    return Rect.nearest_window_distance(objects, qx, qy, length, width)


def cluster_distance(
    qx: float,
    qy: float,
    objects: Sequence[PointObject],
    measure: DistanceMeasure,
    length: float,
    width: float,
) -> float:
    """Dispatch to the selected measure.

    Args:
        qx: Query x coordinate.
        qy: Query y coordinate.
        objects: The candidate group (non-empty).
        measure: Which of Equations (1)-(4) to apply.
        length: Window length (only used by NEAREST_WINDOW).
        width: Window width (only used by NEAREST_WINDOW).
    """
    if measure is DistanceMeasure.MIN:
        return minimum_distance(qx, qy, objects)
    if measure is DistanceMeasure.MAX:
        return maximum_distance(qx, qy, objects)
    if measure is DistanceMeasure.AVG:
        return average_distance(qx, qy, objects)
    if measure is DistanceMeasure.NEAREST_WINDOW:
        return nearest_window_distance(qx, qy, objects, length, width)
    raise ValueError(f"unknown measure: {measure!r}")


def _require_group(objects: Sequence[PointObject]) -> None:
    if not objects:
        raise ValueError("cluster distance of an empty group is undefined")
