"""Typed error hierarchy of the query engine.

Every failure the NWC/kNWC layer can raise on its own maps to a
subclass of :class:`NWCError`, so serving layers (the CLI, the eval
harness) can turn engine misuse into clean diagnostics without string-
matching bare builtins.  Each subclass also inherits the builtin
exception the seed code raised (``ValueError`` / ``RuntimeError``), so
existing ``except`` clauses keep working.

Note that an *unsatisfiable* query — ``n`` larger than the dataset, or
a constrained region holding no objects — is **not** an error: it
returns an explicit empty result with a ``reason`` (see
:class:`repro.core.results.NWCResult`).  Errors are reserved for
requests the engine cannot even interpret.
"""

from __future__ import annotations

__all__ = [
    "BatchStateError",
    "EngineConfigError",
    "NWCError",
    "QueryParameterError",
]


class NWCError(Exception):
    """Base class of every query-engine failure."""


class QueryParameterError(NWCError, ValueError):
    """A query descriptor's parameters are malformed (non-finite
    location, non-positive window or counts, ``m`` out of range)."""


class EngineConfigError(NWCError, ValueError):
    """The engine cannot be configured as requested (unknown execution
    mode, DEP grid over an empty tree, ...)."""


class BatchStateError(NWCError, RuntimeError):
    """Batched execution was used while another batch is in flight."""
