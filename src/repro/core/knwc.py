"""Group maintenance for kNWC queries (Section 3.4).

Two interchangeable policies:

* :class:`PaperGroupList` — the paper's Steps 1-5 verbatim: a bounded
  list of at most ``k`` groups; a new group is inserted by distance rank,
  rejected when it overlaps a *closer* kept group in more than ``m``
  objects, and kept groups farther than an inserted one are evicted when
  they overlap it too much.  Candidates rejected against a group that is
  evicted later are **not** reconsidered, so this policy can deviate from
  Definition 3 (see DESIGN.md §4.1).

* :class:`ExactGroupBuffer` (default) — buffers every distinct candidate
  seen so far and re-derives the answer as the greedy-by-distance filter:
  walk candidates in ascending distance, keep a group iff it overlaps
  every kept group in at most ``m`` objects, stop at ``k``.  This is
  exactly Definition 3's semantics and is what the brute-force reference
  computes, so the two are comparable in tests.

Both expose ``offer`` / ``bound`` / ``finalize`` so the engine is policy
agnostic.  ``bound()`` — the distance of the current ``k``-th group (or
``inf``) — drives SRR skipping and DIP pruning during the search.
"""

from __future__ import annotations

import bisect
from typing import Protocol

from .results import ObjectGroup


def _rank_key(group: ObjectGroup) -> tuple[float, tuple[int, ...]]:
    """Deterministic ordering: distance, then object ids (tie-break)."""
    return (group.distance, tuple(sorted(g for g in group.oids)))


class GroupPolicy(Protocol):
    """Interface shared by the two maintenance policies."""

    def offer(self, group: ObjectGroup) -> None:
        """Present one candidate group to the policy."""

    def bound(self) -> float:
        """Current pruning bound: distance of the k-th kept group."""

    def finalize(self) -> tuple[ObjectGroup, ...]:
        """The final answer, ascending by distance."""


class ExactGroupBuffer:
    """Definition-3-exact maintenance via a sorted candidate buffer."""

    def __init__(self, k: int, m: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if m < 0:
            raise ValueError("m must be non-negative")
        self.k = k
        self.m = m
        self._keys: list[tuple[float, tuple[int, ...]]] = []
        self._candidates: list[ObjectGroup] = []
        self._seen: set[frozenset[int]] = set()
        self._selected: list[ObjectGroup] = []
        self._dirty = False

    def offer(self, group: ObjectGroup) -> None:
        if group.oids in self._seen:
            return
        self._seen.add(group.oids)
        key = _rank_key(group)
        at = bisect.bisect_left(self._keys, key)
        self._keys.insert(at, key)
        self._candidates.insert(at, group)
        # Greedy selection over a grown candidate set only changes when
        # the newcomer ranks ahead of the current k-th selected group;
        # otherwise the cached selection stays valid.
        if len(self._selected) == self.k and key > _rank_key(self._selected[-1]):
            return
        self._dirty = True

    def _select(self) -> list[ObjectGroup]:
        if not self._dirty:
            return self._selected
        selected: list[ObjectGroup] = []
        for cand in self._candidates:
            if len(selected) == self.k:
                break
            if all(cand.overlap(kept) <= self.m for kept in selected):
                selected.append(cand)
        self._selected = selected
        self._dirty = False
        return selected

    def bound(self) -> float:
        selected = self._select()
        if len(selected) < self.k:
            return float("inf")
        return selected[-1].distance

    def finalize(self) -> tuple[ObjectGroup, ...]:
        return tuple(self._select())


class PaperGroupList:
    """The paper's Steps 1-5, applied on every discovered group."""

    def __init__(self, k: int, m: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if m < 0:
            raise ValueError("m must be non-negative")
        self.k = k
        self.m = m
        self._groups: list[ObjectGroup] = []
        self._seen: set[frozenset[int]] = set()

    def offer(self, group: ObjectGroup) -> None:
        if group.oids in self._seen:
            return
        self._seen.add(group.oids)
        groups = self._groups
        key = _rank_key(group)
        # Step 2: scan in reverse for the first kept group closer than
        # the candidate; i is the count of strictly-closer groups.
        i = len(groups)
        while i > 0 and _rank_key(groups[i - 1]) > key:
            i -= 1
        if i == self.k:
            return  # farther than a full answer: drop
        # Step 3: the candidate must respect every closer group.
        for kept in groups[:i]:
            if group.overlap(kept) > self.m:
                return
        # Step 4: insert at position i, dropping a k-th group if needed.
        if len(groups) == self.k:
            groups.pop()
        groups.insert(i, group)
        # Step 5: evict farther groups that now violate the constraint.
        j = i + 1
        while j < len(groups):
            if group.overlap(groups[j]) > self.m:
                groups.pop(j)
            else:
                j += 1

    def bound(self) -> float:
        if len(self._groups) < self.k:
            return float("inf")
        return self._groups[-1].distance

    def finalize(self) -> tuple[ObjectGroup, ...]:
        return tuple(self._groups)


def make_policy(kind: str, k: int, m: int) -> GroupPolicy:
    """Factory: ``"exact"`` (default elsewhere) or ``"paper"``."""
    if kind == "exact":
        return ExactGroupBuffer(k, m)
    if kind == "paper":
        return PaperGroupList(k, m)
    raise ValueError(f"unknown kNWC maintenance policy: {kind!r}")
