"""Group maintenance for kNWC queries (Section 3.4).

Two interchangeable policies:

* :class:`PaperGroupList` — the paper's Steps 1-5 verbatim: a bounded
  list of at most ``k`` groups; a new group is inserted by distance rank,
  rejected when it overlaps a *closer* kept group in more than ``m``
  objects, and kept groups farther than an inserted one are evicted when
  they overlap it too much.  Candidates rejected against a group that is
  evicted later are **not** reconsidered, so this policy can deviate from
  Definition 3 (see DESIGN.md §4.1).

* :class:`ExactGroupBuffer` (default) — buffers every distinct candidate
  seen so far and re-derives the answer as the greedy-by-distance filter:
  walk candidates in ascending distance, keep a group iff it overlaps
  every kept group in at most ``m`` objects, stop at ``k``.  This is
  exactly Definition 3's semantics and is what the brute-force reference
  computes, so the two are comparable in tests.

Both expose ``offer`` / ``bound`` / ``finalize`` so the engine is policy
agnostic.  ``bound()`` — the distance of the current ``k``-th group (or
``inf``) — drives SRR skipping and DIP pruning during the search.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Protocol

from .results import ObjectGroup


def _rank_key(group: ObjectGroup) -> tuple[float, tuple[int, ...]]:
    """Deterministic ordering: distance, then object ids (tie-break)."""
    return (group.distance, tuple(sorted(g for g in group.oids)))


class GroupPolicy(Protocol):
    """Interface shared by the two maintenance policies."""

    def offer(self, group: ObjectGroup) -> None:
        """Present one candidate group to the policy."""

    def bound(self) -> float:
        """Current pruning bound: distance of the k-th kept group."""

    def finalize(self) -> tuple[ObjectGroup, ...]:
        """The final answer, ascending by distance."""


class ExactGroupBuffer:
    """Definition-3-exact maintenance via a sorted candidate buffer."""

    def __init__(self, k: int, m: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if m < 0:
            raise ValueError("m must be non-negative")
        self.k = k
        self.m = m
        self._keys: list[tuple[float, tuple[int, ...]]] = []
        self._candidates: list[ObjectGroup] = []
        self._seen: set[frozenset[int]] = set()
        self._selected: list[ObjectGroup] = []
        self._dirty = False

    def offer(self, group: ObjectGroup) -> None:
        if group.oids in self._seen:
            return
        self._seen.add(group.oids)
        key = _rank_key(group)
        at = bisect.bisect_left(self._keys, key)
        self._keys.insert(at, key)
        self._candidates.insert(at, group)
        # Greedy selection over a grown candidate set only changes when
        # the newcomer ranks ahead of the current k-th selected group;
        # otherwise the cached selection stays valid.
        if len(self._selected) == self.k and key > _rank_key(self._selected[-1]):
            return
        self._dirty = True

    def _select(self) -> list[ObjectGroup]:
        if not self._dirty:
            return self._selected
        selected: list[ObjectGroup] = []
        for cand in self._candidates:
            if len(selected) == self.k:
                break
            if all(cand.overlap(kept) <= self.m for kept in selected):
                selected.append(cand)
        self._selected = selected
        self._dirty = False
        return selected

    def bound(self) -> float:
        selected = self._select()
        if len(selected) < self.k:
            return float("inf")
        return selected[-1].distance

    def finalize(self) -> tuple[ObjectGroup, ...]:
        return tuple(self._select())


class PaperGroupList:
    """The paper's Steps 1-5, applied on every discovered group."""

    def __init__(self, k: int, m: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if m < 0:
            raise ValueError("m must be non-negative")
        self.k = k
        self.m = m
        self._groups: list[ObjectGroup] = []
        self._seen: set[frozenset[int]] = set()

    def offer(self, group: ObjectGroup) -> None:
        if group.oids in self._seen:
            return
        self._seen.add(group.oids)
        groups = self._groups
        key = _rank_key(group)
        # Step 2: scan in reverse for the first kept group closer than
        # the candidate; i is the count of strictly-closer groups.
        i = len(groups)
        while i > 0 and _rank_key(groups[i - 1]) > key:
            i -= 1
        if i == self.k:
            return  # farther than a full answer: drop
        # Step 3: the candidate must respect every closer group.
        for kept in groups[:i]:
            if group.overlap(kept) > self.m:
                return
        # Step 4: insert at position i, dropping a k-th group if needed.
        if len(groups) == self.k:
            groups.pop()
        groups.insert(i, group)
        # Step 5: evict farther groups that now violate the constraint.
        j = i + 1
        while j < len(groups):
            if group.overlap(groups[j]) > self.m:
                groups.pop(j)
            else:
                j += 1

    def bound(self) -> float:
        if len(self._groups) < self.k:
            return float("inf")
        return self._groups[-1].distance

    def finalize(self) -> tuple[ObjectGroup, ...]:
        return tuple(self._groups)


@dataclass(frozen=True, slots=True)
class KNWCCandidates:
    """One shard's raw kNWC candidate pool (see ``knwc_candidates``).

    Attributes:
        groups: Top-``limit`` distinct candidates ascending by
            ``(distance, oids)`` rank, overlap constraint NOT applied.
        orders: Per-candidate enumeration order key of the kept (first)
            offer — ``(anchor distance, partner frame y)``; the
            coordinator sorts the merged pools by it to replay the
            single-engine offer sequence.
        horizon: Distance below which the pool is provably complete;
            ``None`` when nothing was evicted, rank-rejected, or
            search-pruned (the pool then holds *every* candidate the
            shard's search enumerated).
        reason: Unsatisfiability reason, as in ``KNWCResult``.
    """

    groups: tuple[ObjectGroup, ...]
    orders: tuple[tuple[float, float], ...]
    horizon: float | None
    reason: str | None = None


class CandidatePool:
    """Top-``limit`` candidate window instances by rank, no overlap filter.

    The raw material of a cross-shard kNWC merge: the single-engine
    answer under distance ties depends on the exact offer sequence the
    pruned search produced, so shards export raw candidates plus
    enumeration order keys and let the coordinator *replay* the
    single-engine policy over the order-sorted union (see
    ``repro.shard.merge``).  Entries are window **instances** — the same
    object group reached from two anchors is kept twice — because the
    replay's bound-gating decides per instance which one the oracle's
    dedupe would have kept; only exact ``(oids, window)`` duplicates are
    dropped (those are impossible to tell apart and never both offered).

    ``bound()`` prunes the shard search at the worst kept rank's
    distance once the pool is full (or at the seeded coordinator bound
    if lower), which keeps the pool exact for every rank below
    :meth:`horizon`.  With ``limit=None`` the pool is unbounded and —
    when unseeded — never prunes, so it captures the complete offer
    stream (``horizon() is None``).
    """

    def __init__(self, limit: int | None, order_source=None,
                 initial_bound: float | None = None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError("limit must be positive")
        self.limit = limit
        self._source = order_source
        self._seeded = initial_bound is not None
        self._initial = float("inf") if initial_bound is None else initial_bound
        self._keys: list[tuple[float, tuple[int, ...]]] = []
        self._groups: list[ObjectGroup] = []
        self._orders: list[tuple[float, float]] = []
        self._seen: set[tuple[frozenset[int], object]] = set()
        self._overflowed = False

    def offer(self, group: ObjectGroup) -> None:
        instance = (group.oids, group.window)
        if instance in self._seen:
            return
        self._seen.add(instance)
        key = _rank_key(group)
        full = self.limit is not None and len(self._groups) == self.limit
        if full and key >= self._keys[-1]:
            self._overflowed = True
            return
        at = bisect.bisect_left(self._keys, key)
        self._keys.insert(at, key)
        self._groups.insert(at, group)
        if self._source is not None:
            order = self._source._offer_order(group.window)
        else:
            order = (0.0, 0.0)
        self._orders.insert(at, order)
        if full:
            self._keys.pop()
            self._groups.pop()
            self._orders.pop()
            self._overflowed = True

    def bound(self) -> float:
        if self.limit is not None and len(self._groups) == self.limit:
            worst = self._keys[-1][0]
            return worst if worst < self._initial else self._initial
        return self._initial

    def finalize(self) -> tuple[ObjectGroup, ...]:
        return tuple(self._groups)

    def orders(self) -> tuple[tuple[float, float], ...]:
        return tuple(self._orders)

    def horizon(self) -> float | None:
        """Distance below which the pool is provably complete.

        Everything the pool dropped — seed-pruned, search-pruned by
        ``bound()``, rank-rejected, or evicted — had distance at least
        the *final* ``bound()`` (the seed is constant and the worst kept
        rank only tightens), so instances strictly below it are all
        present.  ``None`` when the pool never filled and no seed was
        given: the search then ran unpruned by distance and the pool
        holds every instance enumerated.
        """
        if self._seeded or self._overflowed or (
                self.limit is not None and len(self._groups) == self.limit):
            return self.bound()
        return None


def make_policy(kind: str, k: int, m: int) -> GroupPolicy:
    """Factory: ``"exact"`` (default elsewhere) or ``"paper"``."""
    if kind == "exact":
        return ExactGroupBuffer(k, m)
    if kind == "paper":
        return PaperGroupList(k, m)
    raise ValueError(f"unknown kNWC maintenance policy: {kind!r}")
