"""Query descriptors: NWC (Definition 1) and kNWC (Definition 3)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .errors import QueryParameterError
from .measures import DistanceMeasure


@dataclass(frozen=True, slots=True)
class NWCQuery:
    """An ``NWC(q, l, w, n)`` query.

    Attributes:
        qx: Query location x.
        qy: Query location y.
        length: Window length ``l`` (extent along x).
        width: Window width ``w`` (extent along y).
        n: Number of objects to retrieve (positive).
        measure: Cluster distance measure (Equations 1-4).
    """

    qx: float
    qy: float
    length: float
    width: float
    n: int
    measure: DistanceMeasure = DistanceMeasure.MAX

    def __post_init__(self) -> None:
        if not (math.isfinite(self.qx) and math.isfinite(self.qy)):
            raise QueryParameterError("query location must be finite")
        if not (math.isfinite(self.length) and math.isfinite(self.width)):
            raise QueryParameterError("window length and width must be finite")
        if self.length <= 0 or self.width <= 0:
            raise QueryParameterError("window length and width must be positive")
        if self.n <= 0:
            raise QueryParameterError("n must be positive")

    @property
    def diagonal(self) -> float:
        """Window diagonal; bounds how far a window can reach from an
        object on its edge (used for search termination)."""
        return math.hypot(self.length, self.width)


@dataclass(frozen=True, slots=True)
class KNWCQuery:
    """A ``kNWC(k, q, l, w, n, m)`` query (Definition 3).

    Attributes:
        base: The underlying window/cluster parameters.
        k: Number of object groups to return.
        m: Maximum number of identical objects in any two groups
           (``0 <= m < n``; ``m = n-1`` still forbids identical groups).
    """

    base: NWCQuery
    k: int
    m: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise QueryParameterError("k must be positive")
        if not 0 <= self.m < self.base.n:
            raise QueryParameterError("m must satisfy 0 <= m < n")

    @staticmethod
    def make(
        qx: float,
        qy: float,
        length: float,
        width: float,
        n: int,
        k: int,
        m: int,
        measure: DistanceMeasure = DistanceMeasure.MAX,
    ) -> "KNWCQuery":
        """Convenience constructor mirroring the paper's parameter list."""
        return KNWCQuery(NWCQuery(qx, qy, length, width, n, measure), k, m)
