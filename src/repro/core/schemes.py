"""Scheme registry reproducing Table 3.

A *scheme* is the NWC algorithm with a fixed subset of the four
optimization techniques enabled:

========  ====  ====  ====  ====
Scheme    SRR   DIP   DEP   IWP
========  ====  ====  ====  ====
NWC       --    --    --    --
SRR       yes   --    --    --
DIP       --    yes   --    --
DEP       --    --    yes   --
IWP       --    --    --    yes
NWC+      yes   yes   --    --
NWC*      yes   yes   yes   yes
========  ====  ====  ====  ====

NWC+ uses only the techniques with no extra storage; NWC* enables
everything (Section 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class OptimizationFlags:
    """Which of the Section 3.3 techniques are active."""

    srr: bool = False
    dip: bool = False
    dep: bool = False
    iwp: bool = False

    @property
    def needs_grid(self) -> bool:
        """DEP requires the density grid."""
        return self.dep

    @property
    def needs_pointers(self) -> bool:
        """IWP requires the backward/overlapping pointer index."""
        return self.iwp

    @property
    def storage_free(self) -> bool:
        """True when no technique needs storage beyond the R-tree."""
        return not (self.dep or self.iwp)


class Scheme(enum.Enum):
    """Named schemes of Table 3."""

    NWC = "NWC"
    SRR = "SRR"
    DIP = "DIP"
    DEP = "DEP"
    IWP = "IWP"
    NWC_PLUS = "NWC+"
    NWC_STAR = "NWC*"

    @property
    def flags(self) -> OptimizationFlags:
        """The technique subset this scheme enables."""
        return _SCHEME_FLAGS[self]


_SCHEME_FLAGS = {
    Scheme.NWC: OptimizationFlags(),
    Scheme.SRR: OptimizationFlags(srr=True),
    Scheme.DIP: OptimizationFlags(dip=True),
    Scheme.DEP: OptimizationFlags(dep=True),
    Scheme.IWP: OptimizationFlags(iwp=True),
    Scheme.NWC_PLUS: OptimizationFlags(srr=True, dip=True),
    Scheme.NWC_STAR: OptimizationFlags(srr=True, dip=True, dep=True, iwp=True),
}

#: The schemes compared throughout Section 5, in the paper's order.
ALL_SCHEMES = (
    Scheme.NWC,
    Scheme.SRR,
    Scheme.DIP,
    Scheme.DEP,
    Scheme.IWP,
    Scheme.NWC_PLUS,
    Scheme.NWC_STAR,
)
