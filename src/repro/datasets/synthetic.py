"""Synthetic dataset generators.

``gaussian`` follows the paper exactly (mean 5000, standard deviation
2000, 250,000 points by default; Fig. 10 varies the standard deviation
from 2000 down to 1000).  ``uniform`` and ``clustered`` are the building
blocks for the CA-like and NY-like substitutes in
:mod:`repro.datasets.real_like`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry import Rect
from .dataset import PAPER_EXTENT, Dataset, from_coordinates

#: Paper defaults for the synthetic Gaussian dataset (Table 2 / §5).
GAUSSIAN_CARDINALITY = 250_000
GAUSSIAN_MEAN = 5_000.0
GAUSSIAN_STD = 2_000.0


def gaussian(
    cardinality: int = GAUSSIAN_CARDINALITY,
    mean: float = GAUSSIAN_MEAN,
    std: float = GAUSSIAN_STD,
    seed: int = 20160315,
    extent: Rect = PAPER_EXTENT,
    name: str | None = None,
) -> Dataset:
    """The paper's synthetic dataset: i.i.d. Gaussian coordinates.

    Coordinates are clamped into the extent (a negligible fraction at
    the paper's parameters).
    """
    if cardinality <= 0:
        raise ValueError("cardinality must be positive")
    if std <= 0:
        raise ValueError("std must be positive")
    rng = np.random.default_rng(seed)
    coords = rng.normal(mean, std, size=(cardinality, 2))
    label = name if name is not None else f"Gaussian(std={std:g})"
    return from_coordinates(label, coords, extent)


def uniform(
    cardinality: int,
    seed: int = 0,
    extent: Rect = PAPER_EXTENT,
    name: str = "Uniform",
) -> Dataset:
    """Uniformly distributed objects over the extent."""
    if cardinality <= 0:
        raise ValueError("cardinality must be positive")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(extent.x1, extent.x2, cardinality)
    ys = rng.uniform(extent.y1, extent.y2, cardinality)
    return from_coordinates(name, np.column_stack([xs, ys]), extent)


def clustered(
    cardinality: int,
    centers: Sequence[tuple[float, float]],
    spreads: Sequence[float],
    weights: Sequence[float] | None = None,
    background_fraction: float = 0.1,
    seed: int = 0,
    extent: Rect = PAPER_EXTENT,
    name: str = "Clustered",
) -> Dataset:
    """Mixture-of-Gaussians clusters plus uniform background noise.

    Args:
        cardinality: Total number of objects.
        centers: Cluster centres.
        spreads: Per-cluster standard deviation (same length as centers).
        weights: Relative cluster sizes; uniform when omitted.
        background_fraction: Fraction of objects drawn uniformly over
            the extent instead of from a cluster.
        seed: RNG seed.
    """
    if cardinality <= 0:
        raise ValueError("cardinality must be positive")
    if len(centers) != len(spreads) or not centers:
        raise ValueError("centers and spreads must be non-empty, equal length")
    if not 0.0 <= background_fraction < 1.0:
        raise ValueError("background_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    n_background = int(round(cardinality * background_fraction))
    n_clustered = cardinality - n_background
    if weights is None:
        probs = np.full(len(centers), 1.0 / len(centers))
    else:
        probs = np.asarray(weights, dtype=float)
        if len(probs) != len(centers) or probs.sum() <= 0:
            raise ValueError("weights must match centers and sum > 0")
        probs = probs / probs.sum()
    assignments = rng.choice(len(centers), size=n_clustered, p=probs)
    coords = np.empty((cardinality, 2), dtype=float)
    centers_arr = np.asarray(centers, dtype=float)
    spreads_arr = np.asarray(spreads, dtype=float)
    coords[:n_clustered] = centers_arr[assignments] + rng.normal(
        0.0, 1.0, size=(n_clustered, 2)
    ) * spreads_arr[assignments][:, None]
    coords[n_clustered:, 0] = rng.uniform(extent.x1, extent.x2, n_background)
    coords[n_clustered:, 1] = rng.uniform(extent.y1, extent.y2, n_background)
    rng.shuffle(coords)
    return from_coordinates(name, coords, extent)


def gaussian_family(
    stds: Sequence[float] = (2000.0, 1750.0, 1500.0, 1250.0, 1000.0),
    cardinality: int = GAUSSIAN_CARDINALITY,
    seed: int = 20160315,
) -> list[Dataset]:
    """The Figure 10 datasets: fixed mean 5000, varying std."""
    return [gaussian(cardinality=cardinality, std=s, seed=seed) for s in stds]
