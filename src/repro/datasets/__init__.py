"""Datasets: the paper's Gaussian synthetic plus CA/NY-like substitutes."""

from .dataset import PAPER_EXTENT, Dataset, from_coordinates
from .io import load_csv, save_csv
from .real_like import CA_CARDINALITY, NY_CARDINALITY, ca_like, ny_like
from .synthetic import (
    GAUSSIAN_CARDINALITY,
    GAUSSIAN_MEAN,
    GAUSSIAN_STD,
    clustered,
    gaussian,
    gaussian_family,
    uniform,
)

__all__ = [
    "CA_CARDINALITY",
    "Dataset",
    "GAUSSIAN_CARDINALITY",
    "GAUSSIAN_MEAN",
    "GAUSSIAN_STD",
    "NY_CARDINALITY",
    "PAPER_EXTENT",
    "ca_like",
    "clustered",
    "from_coordinates",
    "gaussian",
    "gaussian_family",
    "load_csv",
    "ny_like",
    "save_csv",
    "uniform",
]
