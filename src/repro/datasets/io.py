"""CSV persistence for datasets.

Format: a header line ``oid,x,y`` followed by one row per object — easy
to diff, easy to load into any external tool.
"""

from __future__ import annotations

import csv
import os

from ..geometry import PointObject, Rect
from .dataset import PAPER_EXTENT, Dataset


def save_csv(dataset: Dataset, path: str | os.PathLike[str]) -> None:
    """Write a dataset to ``path``."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["oid", "x", "y"])
        for p in dataset.points:
            writer.writerow([p.oid, repr(p.x), repr(p.y)])


def load_csv(
    path: str | os.PathLike[str],
    name: str | None = None,
    extent: Rect = PAPER_EXTENT,
) -> Dataset:
    """Read a dataset written by :func:`save_csv`.

    Args:
        path: Source file.
        name: Dataset name; defaults to the file's base name.
        extent: Data space to attach.

    Raises:
        ValueError: On missing/invalid header or malformed rows.
    """
    points: list[PointObject] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip() for h in header] != ["oid", "x", "y"]:
            raise ValueError(f"{path}: expected header 'oid,x,y', got {header!r}")
        for row_number, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise ValueError(f"{path}:{row_number}: expected 3 fields, got {len(row)}")
            try:
                points.append(PointObject(int(row[0]), float(row[1]), float(row[2])))
            except ValueError as exc:
                raise ValueError(f"{path}:{row_number}: {exc}") from exc
    label = name if name is not None else os.path.splitext(os.path.basename(path))[0]
    return Dataset(label, tuple(points), extent)
