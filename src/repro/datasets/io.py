"""CSV persistence for datasets.

Format: a header line ``oid,x,y`` followed by one row per object — easy
to diff, easy to load into any external tool.

Robustness: :func:`save_csv` writes atomically (temp file + rename), so
a crash mid-save never leaves a half-written dataset behind;
:func:`load_csv` rejects non-finite coordinates and duplicate object
ids with line-numbered errors instead of silently building a dataset
the engine cannot answer correctly over.
"""

from __future__ import annotations

import csv
import math
import os

from ..geometry import PointObject, Rect
from .dataset import PAPER_EXTENT, Dataset


def save_csv(dataset: Dataset, path: str | os.PathLike[str]) -> None:
    """Write a dataset to ``path`` atomically.

    The rows land in a same-directory temporary file that is fsynced
    and renamed over ``path``; a crash at any point leaves either the
    previous file or the complete new one.
    """
    path = os.fspath(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["oid", "x", "y"])
            for p in dataset.points:
                writer.writerow([p.oid, repr(p.x), repr(p.y)])
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_csv(
    path: str | os.PathLike[str],
    name: str | None = None,
    extent: Rect = PAPER_EXTENT,
) -> Dataset:
    """Read a dataset written by :func:`save_csv`.

    Args:
        path: Source file.
        name: Dataset name; defaults to the file's base name.
        extent: Data space to attach.

    Raises:
        ValueError: On missing/invalid header or malformed rows — a bad
            field count, an unparsable number, a NaN/infinite
            coordinate, or a duplicate ``oid``; every message carries
            the offending ``path:line``.
    """
    points: list[PointObject] = []
    seen_oids: dict[int, int] = {}
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip() for h in header] != ["oid", "x", "y"]:
            raise ValueError(f"{path}: expected header 'oid,x,y', got {header!r}")
        for row_number, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise ValueError(f"{path}:{row_number}: expected 3 fields, got {len(row)}")
            try:
                oid, x, y = int(row[0]), float(row[1]), float(row[2])
            except ValueError as exc:
                raise ValueError(f"{path}:{row_number}: {exc}") from exc
            if not (math.isfinite(x) and math.isfinite(y)):
                raise ValueError(
                    f"{path}:{row_number}: non-finite coordinate "
                    f"({row[1]!r}, {row[2]!r}) for oid {oid}"
                )
            first_seen = seen_oids.get(oid)
            if first_seen is not None:
                raise ValueError(
                    f"{path}:{row_number}: duplicate oid {oid} "
                    f"(first seen at line {first_seen})"
                )
            seen_oids[oid] = row_number
            points.append(PointObject(oid, x, y))
    label = name if name is not None else os.path.splitext(os.path.basename(path))[0]
    return Dataset(label, tuple(points), extent)
