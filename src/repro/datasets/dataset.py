"""Dataset container.

All paper datasets live in a square of width 10,000 (Section 5: "the
data space ... normalized to a square of width 10,000").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry import PointObject, Rect

#: The paper's data space.
PAPER_EXTENT = Rect(0.0, 0.0, 10_000.0, 10_000.0)


@dataclass(frozen=True, slots=True)
class Dataset:
    """A named, immutable collection of data objects.

    Attributes:
        name: Identifier used in reports (e.g. ``"CA-like"``).
        points: The objects, with ids ``0..len-1``.
        extent: The normalized data space.
    """

    name: str
    points: tuple[PointObject, ...]
    extent: Rect = PAPER_EXTENT

    def __len__(self) -> int:
        return len(self.points)

    @property
    def cardinality(self) -> int:
        """Number of objects (Table 2's "Cardinality")."""
        return len(self.points)

    @property
    def density(self) -> float:
        """Objects per unit area over the full extent."""
        return len(self.points) / self.extent.area

    def coordinates(self) -> np.ndarray:
        """``(N, 2)`` float array of the locations."""
        return np.array([(p.x, p.y) for p in self.points], dtype=float)

    def subsample(self, fraction: float, seed: int = 0) -> "Dataset":
        """Deterministic random subsample (used to scale experiments).

        Args:
            fraction: Kept fraction in ``(0, 1]``.
            seed: RNG seed for reproducibility.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if fraction == 1.0:
            return self
        rng = np.random.default_rng(seed)
        keep = rng.random(len(self.points)) < fraction
        picked = [p for p, flag in zip(self.points, keep) if flag]
        renumbered = tuple(
            PointObject(i, p.x, p.y) for i, p in enumerate(picked)
        )
        return Dataset(f"{self.name}@{fraction:g}", renumbered, self.extent)


def from_coordinates(
    name: str, coords: Sequence[tuple[float, float]] | np.ndarray,
    extent: Rect = PAPER_EXTENT,
) -> Dataset:
    """Wrap raw coordinates, clamping them into the extent."""
    points = []
    for i, (x, y) in enumerate(coords):
        cx = min(max(float(x), extent.x1), extent.x2)
        cy = min(max(float(y), extent.y1), extent.y2)
        points.append(PointObject(i, cx, cy))
    return Dataset(name, tuple(points), extent)
