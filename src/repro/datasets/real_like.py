"""Deterministic substitutes for the paper's real datasets.

The CA file (62,556 places in California, chorochronos.org) and the NY
file (255,259 places in New York, census TIGER) are unavailable offline,
so we synthesize look-alikes that preserve the properties the paper's
findings rest on — cardinality and *degree of clustering* (Section 5
repeatedly attributes scheme behaviour to "highly clustered" NY vs the
moderately clustered CA vs the near-uniform-in-the-core Gaussian):

* **CA-like** — place names in California concentrate along the coastal
  corridor and the Central Valley.  We lay ~40 medium-spread clusters
  along two diagonal bands (southwest-northeast), with 15% background.
* **NY-like** — New York places are dominated by a dense urban core
  with many tight satellite clusters.  We use ~220 small-spread clusters
  whose weights decay with distance from the core, 5% background, and a
  much larger cardinality — the combination the paper calls "a large
  number of data objects ... highly clustered".

Both generators are pure functions of their seed.
"""

from __future__ import annotations

import numpy as np

from .dataset import PAPER_EXTENT, Dataset
from .synthetic import clustered

#: Table 2 cardinalities.
CA_CARDINALITY = 62_556
NY_CARDINALITY = 255_259


def ca_like(cardinality: int = CA_CARDINALITY, seed: int = 1601) -> Dataset:
    """California-like place distribution (see module docstring)."""
    rng = np.random.default_rng(seed)
    centers = []
    spreads = []
    weights = []
    # Coastal band: denser, larger towns from (1000, 1000) to (6500, 9000).
    for t in np.linspace(0.0, 1.0, 24):
        cx = 1000.0 + 5500.0 * t + rng.normal(0.0, 300.0)
        cy = 1000.0 + 8000.0 * t + rng.normal(0.0, 300.0)
        centers.append((cx, cy))
        spreads.append(float(rng.uniform(80.0, 260.0)))
        weights.append(float(rng.uniform(0.8, 2.5)))
    # Inland valley band: sparser, smaller towns.
    for t in np.linspace(0.05, 0.95, 16):
        cx = 3000.0 + 5500.0 * t + rng.normal(0.0, 350.0)
        cy = 500.0 + 8000.0 * t + rng.normal(0.0, 350.0)
        centers.append((cx, cy))
        spreads.append(float(rng.uniform(120.0, 400.0)))
        weights.append(float(rng.uniform(0.4, 1.2)))
    ds = clustered(
        cardinality,
        centers,
        spreads,
        weights=weights,
        background_fraction=0.15,
        seed=seed + 1,
        name="CA-like",
    )
    return ds


def ny_like(cardinality: int = NY_CARDINALITY, seed: int = 1898) -> Dataset:
    """New-York-like place distribution (see module docstring)."""
    rng = np.random.default_rng(seed)
    core = np.array([3200.0, 2800.0])  # the metro core
    centers = []
    spreads = []
    weights = []
    # Dense core boroughs: many very tight clusters.
    for _ in range(80):
        offset = rng.normal(0.0, 700.0, size=2)
        centers.append(tuple(core + offset))
        spreads.append(float(rng.uniform(20.0, 90.0)))
        weights.append(float(rng.uniform(1.5, 5.0)))
    # Upstate towns: spread over the rest of the space, tight but light.
    for _ in range(140):
        cx = float(rng.uniform(500.0, 9500.0))
        cy = float(rng.uniform(500.0, 9500.0))
        centers.append((cx, cy))
        spreads.append(float(rng.uniform(25.0, 140.0)))
        weights.append(float(rng.uniform(0.2, 1.0)))
    ds = clustered(
        cardinality,
        centers,
        spreads,
        weights=weights,
        background_fraction=0.05,
        seed=seed + 1,
        name="NY-like",
    )
    return ds
