"""Command-line interface: ``python -m repro`` / ``nwc-repro``.

Subcommands:

* ``experiment <id>`` — run one of the Section 5 experiments (``fig9``
  .. ``fig14``, ``table2``, ``table3``, ``storage``, ``costmodel``) and
  print the paper-style table; ``--csv`` also writes the raw rows and
  ``--metrics`` writes aggregate sweep metrics (JSON, or Prometheus
  text for a ``.prom`` path).
* ``query`` — answer a single NWC/kNWC query against a generated
  dataset (handy for exploration).
* ``trace`` — run one query with the tracer attached and pretty-print
  its span tree; ``--explain`` summarizes which optimizations fired,
  ``--jsonl`` appends the structured trace to a sink file.  With
  ``--port`` the query goes to a running server instead: the client
  sends a trace context and renders the returned span tree — against a
  shard coordinator that is one stitched cross-process trace with
  per-shard RPC attribution.
* ``serve`` — expose an engine over TCP (newline-delimited JSON) with
  the update-aware result cache and admission control; ``--state-dir``
  adds write-ahead logging with checkpoint/compaction so acknowledged
  updates survive crashes, and ``--supervised`` wraps the server in a
  crash-restarting process supervisor.
* ``loadgen`` — drive a running server with closed-loop workers and
  report throughput and latency percentiles; ``--verify`` replays every
  operation on a twin engine and counts answer mismatches
  (``--verify-sharded`` uses the sharded coordinator's canon),
  ``--retries`` rides out server restarts with idempotent resends, and
  ``--subscriptions``/``--verify-subs`` register standing queries and
  check every pushed notification against the twin.
* ``subscribe`` — register a standing NWC/kNWC query on a running
  server and stream its push notifications as JSON lines; ``--sub``
  resumes a named subscription after a reconnect.
* ``partition`` — cut a generated dataset into density-balanced shard
  page files plus a manifest (the input of sharded serving).
* ``shard-serve`` — boot one worker process per shard over a partition
  directory and serve the ordinary NDJSON protocol from a
  scatter-gather coordinator; ``--attach`` reuses already-running
  workers instead.
* ``shard-worker`` — one shard's server process (started by
  ``shard-serve``; rarely invoked by hand).
* ``fleet-status`` — one-shot (or ``--watch``) table of per-shard
  qps, p99, prune/refetch rates, WAL lag, SLO burn, live
  subscriptions, notification rate and re-evaluation p99, computed
  from two fleet-scope metric scrapes of a running shard coordinator.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .core import (
    DEFAULT_EXECUTION,
    EXECUTION_MODES,
    KNWCQuery,
    NWCEngine,
    NWCError,
    NWCQuery,
    Scheme,
)
from .datasets import ca_like, gaussian, ny_like, uniform
from .eval import (
    EXPERIMENTS,
    PARALLEL_EXPERIMENTS,
    format_table,
    parallel_experiment,
    pivot_by_scheme,
    save_csv,
)
from .grid import DensityGrid
from .index import IWPIndex, RStarTree
from .obs import (
    DEFAULT_WORK_BUCKETS,
    MetricsRegistry,
    QueryTracer,
    explain,
    format_span_tree,
    span_from_dict,
    write_jsonl,
)
from .storage import StorageError

_DATASETS = {
    "ca": lambda size: ca_like(size),
    "ny": lambda size: ny_like(size),
    "gaussian": lambda size: gaussian(size),
    "uniform": lambda size: uniform(size),
}


def _make_engine(args: argparse.Namespace, *, tracer=None, metrics=None,
                 execution: str = DEFAULT_EXECUTION,
                 tree: RStarTree | None = None) -> NWCEngine:
    """Build an engine for ``args`` with the scheme's DEP/IWP structures.

    Schemes whose flags ask for density-grid or pointer-index support get
    those structures built here, so single-query commands exercise the
    same optimizations as the experiment sweeps.

    With ``tree`` given (a recovered checkpoint instead of a fresh bulk
    load), the dataset still provides the extent and query-pool
    geometry, but every data-derived structure is rebuilt from the
    recovered tree — a density grid counted from the *seed* points would
    prune regions where replayed inserts actually live.
    """
    dataset = _DATASETS[args.dataset](args.size)
    recovered = tree is not None
    if tree is None:
        tree = RStarTree.bulk_load(dataset.points)
    scheme = Scheme[args.scheme]
    flags = scheme.flags
    grid = None
    if flags.dep:
        grid = DensityGrid.build(dataset.points, dataset.extent, 25.0)
    iwp = IWPIndex(tree) if flags.iwp else None
    engine = NWCEngine(
        tree, scheme, grid=grid, iwp=iwp, extent=dataset.extent,
        execution=execution, tracer=tracer, metrics=metrics,
    )
    if recovered and grid is not None:
        # Recount the grid from the tree via the engine's own lazy
        # rebuild path (the one updates take), not from the seed points.
        engine._grid_dirty = True
        engine._refresh_structures()
    return engine


def _run_query(engine: NWCEngine, args: argparse.Namespace) -> None:
    """Run the query described by ``args`` and print its answer."""
    if args.k > 1:
        query = KNWCQuery.make(args.x, args.y, args.length, args.width,
                               args.n, args.k, args.m)
        result = engine.knwc(query)
        print(f"{len(result.groups)} group(s); node accesses: {result.node_accesses}")
        for rank, group in enumerate(result.groups, 1):
            oids = ", ".join(str(o) for o in sorted(group.oids))
            print(f"  #{rank}: dist={group.distance:.2f} objects=[{oids}]")
    else:
        result = engine.nwc(NWCQuery(args.x, args.y, args.length, args.width, args.n))
        if result.found:
            oids = ", ".join(str(p.oid) for p in result.objects)
            print(f"dist={result.distance:.2f} objects=[{oids}] "
                  f"window={result.group.window}")
        else:
            print("no qualified window exists")
        print(f"node accesses: {result.node_accesses}")


def _write_metrics(metrics: MetricsRegistry, path: str) -> None:
    """Write ``metrics`` to ``path`` (JSON, or Prometheus text for .prom)."""
    if path.endswith(".prom"):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(metrics.dump_metrics())
    else:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(metrics.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _aggregate_row_metrics(metrics: MetricsRegistry, result) -> None:
    """Fold finished sweep rows into the registry.

    Serial experiment drivers never see the registry, so the CLI derives
    cell-level aggregates from the result rows after the fact; on the
    parallel path these ride alongside the runner's own task metrics.
    """
    cells = metrics.counter("experiment_cells_total",
                            "Finished sweep cells (rows)")
    accesses = metrics.histogram(
        "experiment_cell_node_accesses",
        "Mean node accesses per finished cell",
        buckets=DEFAULT_WORK_BUCKETS,
    )
    for row in result.rows:
        cells.inc()
        value = row.get("node_accesses")
        if isinstance(value, (int, float)):
            accesses.observe(float(value))


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = EXPERIMENTS.get(args.id)
    if runner is None:
        print(f"unknown experiment {args.id!r}; choose from "
              f"{', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.queries is not None:
        kwargs["queries"] = args.queries
    jobs = args.jobs if args.jobs >= 1 else None  # None = one per CPU
    checkpoint = args.checkpoint
    if args.resume and checkpoint is None:
        checkpoint = f"{args.id}.sweep.jsonl"
    metrics = MetricsRegistry() if args.metrics else None
    wants_sweep_features = (
        checkpoint is not None or args.timeout is not None or jobs != 1
    )
    if wants_sweep_features and args.id in PARALLEL_EXPERIMENTS:
        result = parallel_experiment(
            args.id, jobs=jobs, timeout=args.timeout, checkpoint=checkpoint,
            metrics=metrics, **kwargs,
        )
    else:
        if checkpoint is not None or args.timeout is not None:
            print(f"--resume/--timeout need a sweep experiment "
                  f"({', '.join(PARALLEL_EXPERIMENTS)}); "
                  f"{args.id!r} has no parallel driver", file=sys.stderr)
            return 2
        if jobs != 1:
            print(f"note: {args.id!r} has no parallel driver; running serially",
                  file=sys.stderr)
        result = runner(**kwargs)
    x_column = {
        "fig9": "grid_size", "fig10": "std", "fig11": "n",
        "fig12": "window", "fig13": "k", "fig14": "m",
    }.get(args.id)
    if x_column and any("scheme" in row for row in result.rows):
        print(pivot_by_scheme(result, x_column))
    else:
        print(format_table(result))
    if args.csv:
        save_csv(result, args.csv)
        print(f"\nrows written to {args.csv}")
    if metrics is not None:
        _aggregate_row_metrics(metrics, result)
        _write_metrics(metrics, args.metrics)
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    if result.meta.get("checkpoint"):
        print(f"checkpoint: {result.meta['checkpoint']} "
              f"({result.meta.get('resumed_cells', 0)} cells resumed)",
              file=sys.stderr)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    _run_query(engine, args)
    return 0


def _trace_remote(args: argparse.Namespace) -> int:
    """Trace one query against a running server (``trace --port``).

    The client mints a trace context, attaches it to the query, and
    renders the span tree the server returns — against a shard
    coordinator that is the stitched cross-process trace whose root
    I/O equals the sum of the shard subtrees.
    """
    from .obs.context import TraceContext, new_span_id, new_trace_id
    from .serve.client import ServeClient, ServeClientError

    ctx = TraceContext(new_trace_id(), new_span_id())
    try:
        with ServeClient(args.host, args.port) as client:
            if args.k > 1:
                response = client.knwc(args.x, args.y, args.length,
                                       args.width, args.n, args.k, args.m,
                                       trace=ctx.to_wire())
            else:
                response = client.nwc(args.x, args.y, args.length,
                                      args.width, args.n,
                                      trace=ctx.to_wire())
    except (OSError, ServeClientError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    envelope = response.get("trace") or {}
    if envelope.get("span") is None:
        print("error: server returned no trace", file=sys.stderr)
        return 2
    root = span_from_dict(envelope["span"])
    result = response.get("result") or {}
    print(f"trace {envelope.get('trace_id')} from {args.host}:{args.port} "
          f"(version {response.get('version')})")
    if args.k > 1:
        groups = result.get("groups", [])
        print(f"{len(groups)} group(s); node accesses: "
              f"{response.get('stats', {}).get('node_accesses')}")
        for rank, group in enumerate(groups, 1):
            oids = ", ".join(str(oid) for oid in
                             sorted(o[0] for o in group["objects"]))
            print(f"  #{rank}: dist={group['distance']:.2f} objects=[{oids}]")
    elif result.get("found"):
        group = result["group"]
        oids = ", ".join(str(oid) for oid in
                         sorted(o[0] for o in group["objects"]))
        print(f"dist={group['distance']:.2f} objects=[{oids}]")
        print(f"node accesses: "
              f"{response.get('stats', {}).get('node_accesses')}")
    else:
        print("no qualified window exists")
    print()
    print(format_span_tree(root))
    if envelope.get("dropped_spans"):
        print(f"({envelope['dropped_spans']} span(s) dropped server-side)",
              file=sys.stderr)
    if args.explain:
        print()
        print(explain(root))
    if args.jsonl:
        write_jsonl([root], args.jsonl)
        print(f"trace appended to {args.jsonl}", file=sys.stderr)
    if args.metrics:
        print("note: --metrics is local-only; scrape the server's "
              "'metrics' op (or 'fleet-status') instead", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.port is not None:
        return _trace_remote(args)
    tracer = QueryTracer()
    metrics = MetricsRegistry()
    engine = _make_engine(args, tracer=tracer, metrics=metrics,
                          execution=args.execution)
    _run_query(engine, args)
    root = tracer.last
    if root is None:
        print("error: no trace recorded", file=sys.stderr)
        return 2
    print()
    print(format_span_tree(root))
    if tracer.dropped_spans:
        print(f"({tracer.dropped_spans} span(s) dropped: "
              f"max_spans={tracer.max_spans})", file=sys.stderr)
    if args.explain:
        print()
        print(explain(root))
    if args.jsonl:
        write_jsonl(tracer.roots, args.jsonl)
        print(f"trace appended to {args.jsonl}", file=sys.stderr)
    if args.metrics:
        _write_metrics(metrics, args.metrics)
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    return 0


def _write_port_file(path: str, port: int) -> None:
    """Atomically publish the bound port (harnesses race to read it)."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(f"{port}\n")
    os.replace(tmp, path)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.supervised:
        from .serve.supervisor import Supervisor, SupervisorConfig

        # The child is this exact serve command minus --supervised; it
        # does the real work (recovery included) and the parent only
        # restarts it when it dies uncleanly.
        child_argv = [a for a in args.raw_argv if a != "--supervised"]
        pid_file = (os.path.join(args.state_dir, "server.pid")
                    if args.state_dir else None)
        supervisor = Supervisor(
            [sys.executable, "-m", "repro", *child_argv],
            SupervisorConfig(max_restarts=args.max_restarts,
                             pid_file=pid_file),
        )
        return supervisor.run()

    import asyncio

    from .serve import QueryServer, ServeConfig

    metrics = MetricsRegistry()
    durable = None
    if args.state_dir:
        from .serve import DurabilityConfig, recover

        dconfig = DurabilityConfig(
            state_dir=args.state_dir, fsync=args.wal_fsync,
            fsync_interval_s=args.wal_fsync_interval,
            checkpoint_every=args.checkpoint_every,
        )
        engine, durable = recover(
            dconfig,
            lambda tree: _make_engine(args, execution=args.execution,
                                      tree=tree),
            metrics=metrics,
        )
        report = durable.recovery
        print(f"recovered from {args.state_dir}: checkpoint seq "
              f"{report.checkpoint_seq}, {report.replayed} WAL record(s) "
              f"replayed, {report.truncated_bytes} torn byte(s) dropped, "
              f"version {report.version}", file=sys.stderr, flush=True)
    else:
        engine = _make_engine(args, execution=args.execution)
    config = ServeConfig(
        host=args.host, port=args.port,
        max_inflight=args.max_inflight, max_queue=args.max_queue,
        deadline_s=args.deadline, cache_entries=args.cache_entries,
        cache_ttl_s=args.cache_ttl,
    )
    server = QueryServer(engine, config, metrics=metrics, durable=durable)

    async def run() -> None:
        await server.start()
        if args.port_file:
            _write_port_file(args.port_file, server.port)
        print(f"serving {args.dataset}/{args.size} ({args.scheme}, "
              f"{args.execution}) on {config.host}:{server.port}",
              file=sys.stderr, flush=True)
        await server.serve_forever()
        print("drained, exiting", file=sys.stderr)

    asyncio.run(run())
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .serve import LoadgenConfig, LoadMix, run_loadgen

    # The dataset seeds the query pool; with --verify it must describe
    # the same points the server was started with (same --dataset,
    # --size, --scheme and --execution), because the twin engine replays
    # every operation locally and compares answers byte for byte.
    dataset = _DATASETS[args.dataset](args.size)
    twin = None
    if args.verify_sharded:
        from .serve.loadgen import ShardedVerifyTwin

        # The coordinator's canon: pruned columnar engine for NWC,
        # unpruned baseline for kNWC (exact tie picks included).
        star = _make_engine(args, execution=args.execution)
        baseline_args = argparse.Namespace(**vars(args))
        baseline_args.scheme = "NWC"
        baseline = _make_engine(baseline_args)
        twin = ShardedVerifyTwin(star, baseline)
    elif args.verify:
        twin = _make_engine(args, execution=args.execution)
    if args.verify_subs and twin is None:
        print("error: --verify-subs needs a twin; add --verify or "
              "--verify-sharded", file=sys.stderr)
        return 2
    mix = LoadMix(nwc=args.mix_nwc, knwc=args.mix_knwc,
                  insert=args.mix_insert, delete=args.mix_delete)
    retry = None
    if args.retries > 1:
        from .serve import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retries)
    config = LoadgenConfig(
        host=args.host, port=args.port, workers=args.workers,
        duration_s=args.duration, requests_per_worker=args.requests,
        mix=mix, query_pool=args.query_pool,
        length=args.length, width=args.width, n=args.n, k=args.k, m=args.m,
        seed=args.seed, retry=retry,
        subscriptions=args.subscriptions, verify_subs=args.verify_subs,
    )
    report = run_loadgen(config, dataset, verify_engine=twin)
    print(report.format())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.json}", file=sys.stderr)
    if report.mismatches or report.errors or report.sub_missed \
            or report.sub_spurious:
        return 1
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from .shard import partition_dataset

    dataset = _DATASETS[args.dataset](args.size)
    manifest = partition_dataset(
        dataset.points, args.shards, args.halo, args.out_dir,
        extent=dataset.extent, cell_size=args.cell_size,
        dataset_name=f"{args.dataset}/{args.size}",
    )
    print(f"partitioned {args.dataset}/{args.size} into "
          f"{manifest.shard_count} shard(s) under {args.out_dir} "
          f"(halo {manifest.halo:g}, cuts {[round(c, 1) for c in manifest.cuts]})")
    for info in manifest.shards:
        print(f"  shard {info.index}: {info.owned} owned, "
              f"{info.stored} stored -> {info.filename}")
    return 0


def _free_port(host: str) -> int:
    """A currently-free TCP port on ``host`` (picked and released; the
    tiny reuse race is the standard price of pre-assigning worker
    ports so supervised restarts can rebind the same address)."""
    import socket

    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _cmd_shard_worker(args: argparse.Namespace) -> int:
    if args.supervised:
        from .serve.supervisor import Supervisor, SupervisorConfig

        child_argv = [a for a in args.raw_argv if a != "--supervised"]
        pid_file = (os.path.join(args.state_dir, "server.pid")
                    if args.state_dir else None)
        supervisor = Supervisor(
            [sys.executable, "-m", "repro", *child_argv],
            SupervisorConfig(max_restarts=args.max_restarts,
                             pid_file=pid_file),
        )
        return supervisor.run()

    import asyncio

    from .serve import DurabilityConfig, ServeConfig
    from .shard import ShardManifest, build_shard_server

    metrics = MetricsRegistry()
    manifest = ShardManifest.load(args.dir)
    durability = None
    if args.state_dir:
        durability = DurabilityConfig(
            state_dir=args.state_dir, fsync=args.wal_fsync,
            fsync_interval_s=args.wal_fsync_interval,
            checkpoint_every=args.checkpoint_every,
        )
    config = ServeConfig(
        host=args.host, port=args.port,
        max_inflight=args.max_inflight, max_queue=args.max_queue,
        deadline_s=args.deadline,
    )
    server = build_shard_server(
        manifest, args.dir, args.index, config=config,
        state_dir=args.state_dir, durability=durability, metrics=metrics,
    )

    async def run() -> None:
        await server.start()
        if args.port_file:
            _write_port_file(args.port_file, server.port)
        print(f"shard {args.index}/{manifest.shard_count} serving "
              f"{server.owned_size} owned object(s) on "
              f"{config.host}:{server.port}", file=sys.stderr, flush=True)
        await server.serve_forever()
        print(f"shard {args.index} drained, exiting", file=sys.stderr)

    asyncio.run(run())
    return 0


def _cmd_shard_serve(args: argparse.Namespace) -> int:
    import asyncio
    import subprocess

    from .serve.client import wait_until_healthy
    from .shard import CoordinatorConfig, ShardCoordinator, ShardManifest

    manifest = ShardManifest.load(args.dir)
    procs: list = []
    if args.attach:
        addresses = []
        for spec in args.attach.split(","):
            host, _, port = spec.strip().rpartition(":")
            addresses.append((host or "127.0.0.1", int(port)))
        if len(addresses) != manifest.shard_count:
            print(f"error: --attach needs {manifest.shard_count} "
                  f"address(es), got {len(addresses)}", file=sys.stderr)
            return 2
    else:
        ports = [_free_port(args.host) for _ in range(manifest.shard_count)]
        for index, port in enumerate(ports):
            argv = [sys.executable, "-m", "repro", "shard-worker",
                    "--dir", args.dir, "--index", str(index),
                    "--host", args.host, "--port", str(port),
                    "--max-inflight", str(args.worker_inflight)]
            if args.state_root:
                state_dir = os.path.join(args.state_root, f"shard-{index:03d}")
                os.makedirs(state_dir, exist_ok=True)
                argv += ["--state-dir", state_dir]
            if args.supervise_workers:
                argv += ["--supervised"]
            procs.append(subprocess.Popen(argv))
        addresses = [(args.host, port) for port in ports]

    try:
        for host, port in addresses:
            wait_until_healthy(host, port, timeout_s=args.boot_timeout)
        config = CoordinatorConfig(
            host=args.host, port=args.port,
            max_inflight=args.max_inflight, max_queue=args.max_queue,
            deadline_s=args.deadline, cache_entries=args.cache_entries,
            cache_ttl_s=args.cache_ttl, pool_limit=args.pool_limit,
        )
        coordinator = ShardCoordinator(manifest, addresses, config=config,
                                       metrics=MetricsRegistry())

        async def run() -> None:
            await coordinator.start()
            if args.port_file:
                _write_port_file(args.port_file, coordinator.port)
            print(f"coordinating {manifest.shard_count} shard(s) "
                  f"({coordinator.size} objects) on "
                  f"{config.host}:{coordinator.port}",
                  file=sys.stderr, flush=True)
            await coordinator.serve_forever()
            print("coordinator drained, exiting", file=sys.stderr)

        asyncio.run(run())
        return 0
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def _render_fleet_table(rows, wal_lag: dict) -> str:
    lines = [f"{'shard':<12} {'qps':>8} {'p99 ms':>9} {'err':>5} "
             f"{'prune/s':>9} {'refetch/s':>10} {'slo burn':>9} "
             f"{'subs':>6} {'notify/s':>9} {'reeval p99':>11} "
             f"{'wal lag':>8}"]
    for row in rows:
        lag = wal_lag.get(row["shard"])
        lines.append(
            f"{row['shard']:<12} {row['qps']:>8.1f} {row['p99_ms']:>9.2f} "
            f"{row['errors']:>5} {row['prune_per_s']:>9.2f} "
            f"{row['refetch_per_s']:>10.2f} {row['slo_burn']:>9.2f} "
            f"{row['live_subs']:>6.0f} {row['notify_per_s']:>9.2f} "
            f"{row['reeval_p99_ms']:>11.2f} "
            f"{'-' if lag is None else lag:>8}")
    return "\n".join(lines)


def _cmd_subscribe(args: argparse.Namespace) -> int:
    import time

    from .serve.client import ServeClient, ServeClientError

    try:
        client = ServeClient(args.host, args.port)
    except OSError as exc:
        print(f"error: cannot connect to {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    deadline = (None if args.duration is None
                else time.monotonic() + args.duration)
    received = 0
    sub_id = None
    try:
        with client:
            stream = client.subscribe(
                args.x, args.y, args.length, args.width, args.n,
                k=args.k, m=args.m, sub=args.sub)
            sub_id = stream.sub_id
            print(f"subscribed {stream.sub_id}  version {stream.version}  "
                  f"revision {stream.revision}", file=sys.stderr)
            print(json.dumps({"sub": stream.sub_id,
                              "revision": stream.revision,
                              "result": stream.result}, sort_keys=True),
                  flush=True)
            while args.count is None or received < args.count:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    break
                timeout = 0.5 if remaining is None else min(0.5, remaining)
                frame = stream.poll(timeout_s=max(0.01, timeout))
                if frame is None:
                    continue
                received += 1
                print(json.dumps(frame, sort_keys=True), flush=True)
    except KeyboardInterrupt:
        pass
    except ServeClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if sub_id is not None and not args.keep:
        # One-shot ops race pushed frames on a streaming connection, so
        # the unsubscribe goes over a fresh one.
        try:
            with ServeClient(args.host, args.port) as cleanup:
                cleanup.unsubscribe(sub_id)
        except (ServeClientError, OSError) as exc:
            print(f"warning: unsubscribe failed: {exc}", file=sys.stderr)
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import time

    from .obs.fleet import fleet_rows, state_to_registry
    from .serve.client import ServeClient, ServeClientError

    try:
        client = ServeClient(args.host, args.port)
    except OSError as exc:
        print(f"error: cannot connect to {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    with client:
        try:
            health = client.health()
            if "shards" not in health:
                print(f"error: {args.host}:{args.port} is not a shard "
                      "coordinator (no per-shard health); fleet-status "
                      "needs one", file=sys.stderr)
                return 2

            def scrape():
                response = client.metrics(fmt="state", scope="fleet")
                return state_to_registry(response["state"]), response

            before, _ = scrape()
            while True:
                time.sleep(args.interval)
                after, raw = scrape()
                health = client.health()
                wal_lag = {str(entry["shard"]): entry.get("wal_lag")
                           for entry in health.get("shards", [])}
                rows = fleet_rows(before, after, args.interval)
                print(f"fleet @ {args.host}:{args.port}  "
                      f"shards scraped: {raw.get('shards_scraped')}  "
                      f"unreachable: {raw.get('unreachable')}  "
                      f"version: {health.get('version')}")
                print(_render_fleet_table(rows, wal_lag))
                if not args.watch:
                    return 0
                print()
                before = after
        except KeyboardInterrupt:
            return 0
        except ServeClientError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="nwc-repro",
        description="Nearest Window Cluster queries (EDBT 2016) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run a Section 5 experiment")
    exp.add_argument("id", help=f"one of: {', '.join(sorted(EXPERIMENTS))}")
    exp.add_argument("--scale", type=float, default=None,
                     help="dataset scale (default from REPRO_SCALE or 0.05)")
    exp.add_argument("--queries", type=int, default=None,
                     help="queries per setting (paper: 25)")
    exp.add_argument("--jobs", type=int, default=1,
                     help="worker processes for figure sweeps "
                          "(1 = serial; 0 or negative = one per CPU)")
    exp.add_argument("--resume", action="store_true",
                     help="journal finished sweep cells and skip them on "
                          "rerun (figure sweeps only)")
    exp.add_argument("--checkpoint", default=None,
                     help="checkpoint journal path (default with --resume: "
                          "<id>.sweep.jsonl)")
    exp.add_argument("--timeout", type=float, default=None,
                     help="per-task timeout in seconds for parallel sweeps "
                          "(hung workers are retried, then run inline)")
    exp.add_argument("--csv", help="also write rows to this CSV file")
    exp.add_argument("--metrics", default=None,
                     help="write aggregate sweep metrics to this file "
                          "(JSON; a .prom suffix selects Prometheus text)")
    exp.set_defaults(func=_cmd_experiment)

    def add_query_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=sorted(_DATASETS), default="ca")
        p.add_argument("--size", type=int, default=10_000,
                       help="dataset cardinality")
        p.add_argument("--scheme", choices=[s.name for s in Scheme],
                       default="NWC_STAR")
        p.add_argument("-x", type=float, default=5_000.0)
        p.add_argument("-y", type=float, default=5_000.0)
        p.add_argument("--length", type=float, default=100.0)
        p.add_argument("--width", type=float, default=100.0)
        p.add_argument("-n", type=int, default=8)
        p.add_argument("-k", type=int, default=1)
        p.add_argument("-m", type=int, default=0)

    qry = sub.add_parser("query", help="run a single NWC/kNWC query")
    add_query_args(qry)
    qry.set_defaults(func=_cmd_query)

    trc = sub.add_parser(
        "trace", help="run one query with tracing and print its span tree")
    add_query_args(trc)
    trc.add_argument("--execution", choices=list(EXECUTION_MODES),
                     default=DEFAULT_EXECUTION,
                     help=f"engine execution mode (default: {DEFAULT_EXECUTION})")
    trc.add_argument("--explain", action="store_true",
                     help="summarize which optimizations fired and what "
                          "they saved")
    trc.add_argument("--jsonl", default=None,
                     help="append the structured trace to this JSONL sink")
    trc.add_argument("--metrics", default=None,
                     help="write the query's metrics to this file "
                          "(JSON; a .prom suffix selects Prometheus text)")
    trc.add_argument("--host", default="127.0.0.1",
                     help="server host for remote tracing (with --port)")
    trc.add_argument("--port", type=int, default=None,
                     help="trace against a running server instead of a "
                          "local engine: send a trace context and render "
                          "the returned (possibly sharded) span tree")
    trc.set_defaults(func=_cmd_trace)

    def add_dataset_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=sorted(_DATASETS), default="ca")
        p.add_argument("--size", type=int, default=10_000,
                       help="dataset cardinality")
        p.add_argument("--scheme", choices=[s.name for s in Scheme],
                       default="NWC_STAR")
        p.add_argument("--execution", choices=list(EXECUTION_MODES),
                       default=DEFAULT_EXECUTION,
                       help=f"engine execution mode (default: {DEFAULT_EXECUTION})")

    srv = sub.add_parser(
        "serve", help="serve NWC/kNWC queries over TCP (NDJSON protocol)")
    add_dataset_args(srv)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7654,
                     help="bind port (0 = ephemeral)")
    srv.add_argument("--max-inflight", type=int, default=4,
                     help="concurrent engine operations")
    srv.add_argument("--max-queue", type=int, default=64,
                     help="requests allowed to wait beyond --max-inflight "
                          "before the server answers 'overloaded'")
    srv.add_argument("--deadline", type=float, default=10.0,
                     help="default per-request deadline in seconds")
    srv.add_argument("--cache-entries", type=int, default=1024,
                     help="result-cache capacity (0 disables caching)")
    srv.add_argument("--cache-ttl", type=float, default=None,
                     help="result-cache TTL in seconds (default: no expiry)")
    srv.add_argument("--state-dir", default=None,
                     help="durable state directory (WAL + checkpoints); "
                          "acknowledged updates then survive crashes and "
                          "are recovered on the next boot")
    srv.add_argument("--wal-fsync", choices=["always", "interval", "never"],
                     default="interval",
                     help="WAL fsync policy: 'always' survives power loss, "
                          "'interval' survives process crashes (default), "
                          "'never' trusts the page cache")
    srv.add_argument("--wal-fsync-interval", type=float, default=0.05,
                     help="max fsync staleness in seconds under "
                          "--wal-fsync=interval")
    srv.add_argument("--checkpoint-every", type=int, default=0,
                     help="checkpoint-and-compact automatically after this "
                          "many WAL records (0 = only on the 'checkpoint' "
                          "op)")
    srv.add_argument("--port-file", default=None,
                     help="write the bound port to this file once listening "
                          "(for harnesses using --port 0)")
    srv.add_argument("--supervised", action="store_true",
                     help="run the server in a supervised subprocess that "
                          "is restarted with bounded backoff when it "
                          "crashes")
    srv.add_argument("--max-restarts", type=int, default=0,
                     help="give up after this many supervised restarts "
                          "(0 = unlimited)")
    srv.set_defaults(func=_cmd_serve)

    lg = sub.add_parser(
        "loadgen",
        help="drive a running server with closed-loop workers")
    add_dataset_args(lg)
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument("--port", type=int, default=7654)
    lg.add_argument("--workers", type=int, default=4)
    lg.add_argument("--duration", type=float, default=5.0,
                    help="run length in seconds (ignored with --requests)")
    lg.add_argument("--requests", type=int, default=None,
                    help="fixed request count per worker (exact runs)")
    lg.add_argument("--query-pool", type=int, default=32,
                    help="distinct query locations per worker (smaller "
                         "pools repeat more and hit the cache more)")
    lg.add_argument("--mix-nwc", type=float, default=0.70)
    lg.add_argument("--mix-knwc", type=float, default=0.15)
    lg.add_argument("--mix-insert", type=float, default=0.10)
    lg.add_argument("--mix-delete", type=float, default=0.05)
    lg.add_argument("--length", type=float, default=100.0)
    lg.add_argument("--width", type=float, default=100.0)
    lg.add_argument("-n", type=int, default=8)
    lg.add_argument("-k", type=int, default=4)
    lg.add_argument("-m", type=int, default=1)
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--retries", type=int, default=1,
                    help="attempts per request (>1 enables reconnecting "
                         "idempotent retries with request-id dedupe)")
    lg.add_argument("--verify", action="store_true",
                    help="replay every operation on a local twin engine "
                         "and count answer mismatches (the server must "
                         "have been started with the same dataset args); "
                         "exits 1 on any mismatch or request error")
    lg.add_argument("--verify-sharded", action="store_true",
                    help="like --verify but against the sharded "
                         "coordinator's canon: the pruned engine for NWC "
                         "and the unpruned baseline for kNWC")
    lg.add_argument("--subscriptions", type=int, default=0,
                    help="standing queries worker 0 registers over a "
                         "streaming connection before driving load")
    lg.add_argument("--verify-subs", action="store_true",
                    help="check every pushed notification against the "
                         "twin (needs --verify or --verify-sharded); "
                         "exits 1 on any missed or spurious notification")
    lg.add_argument("--json", default=None,
                    help="also write the report to this JSON file")
    lg.set_defaults(func=_cmd_loadgen)

    par = sub.add_parser(
        "partition",
        help="cut a dataset into shard page files plus a manifest")
    par.add_argument("--dataset", choices=sorted(_DATASETS), default="ca")
    par.add_argument("--size", type=int, default=10_000,
                     help="dataset cardinality")
    par.add_argument("--shards", type=int, default=4,
                     help="number of shards (vertical bands)")
    par.add_argument("--halo", type=float, default=100.0,
                     help="stored-band margin; every served query's "
                          "window length must be <= this")
    par.add_argument("--cell-size", type=float, default=25.0,
                     help="density-grid cell size for cut selection")
    par.add_argument("--out-dir", required=True,
                     help="output directory (page files + manifest.json)")
    par.set_defaults(func=_cmd_partition)

    shs = sub.add_parser(
        "shard-serve",
        help="serve a partitioned dataset: one worker process per shard "
             "behind a scatter-gather coordinator")
    shs.add_argument("--dir", required=True,
                     help="partition directory (from 'repro partition')")
    shs.add_argument("--host", default="127.0.0.1")
    shs.add_argument("--port", type=int, default=7654,
                     help="coordinator bind port (0 = ephemeral)")
    shs.add_argument("--max-inflight", type=int, default=16,
                     help="concurrent scatter-gathers at the coordinator")
    shs.add_argument("--max-queue", type=int, default=64)
    shs.add_argument("--deadline", type=float, default=10.0,
                     help="default per-request deadline in seconds")
    shs.add_argument("--cache-entries", type=int, default=1024,
                     help="coordinator result-cache capacity (workers "
                          "never cache scatter ops)")
    shs.add_argument("--cache-ttl", type=float, default=None)
    shs.add_argument("--pool-limit", type=int, default=64,
                     help="per-shard kNWC candidate pool size before an "
                          "unbounded refetch is needed")
    shs.add_argument("--worker-inflight", type=int, default=4,
                     help="concurrent engine operations per shard worker")
    shs.add_argument("--state-root", default=None,
                     help="root directory of per-shard durable state "
                          "(each worker gets <root>/shard-NNN with its "
                          "own WAL and checkpoints)")
    shs.add_argument("--supervise-workers", action="store_true",
                     help="run each worker under a crash-restarting "
                          "supervisor (rebinding the same port)")
    shs.add_argument("--attach", default=None,
                     help="comma-separated host:port list of already "
                          "running shard workers (skips spawning)")
    shs.add_argument("--boot-timeout", type=float, default=30.0,
                     help="seconds to wait for each worker to serve")
    shs.add_argument("--port-file", default=None,
                     help="write the coordinator's bound port here once "
                          "listening (for harnesses using --port 0)")
    shs.set_defaults(func=_cmd_shard_serve)

    shw = sub.add_parser(
        "shard-worker",
        help="one shard's server process (normally started by "
             "shard-serve)")
    shw.add_argument("--dir", required=True,
                     help="partition directory holding manifest.json")
    shw.add_argument("--index", type=int, required=True,
                     help="shard index within the manifest")
    shw.add_argument("--host", default="127.0.0.1")
    shw.add_argument("--port", type=int, default=0,
                     help="bind port (0 = ephemeral)")
    shw.add_argument("--max-inflight", type=int, default=4)
    shw.add_argument("--max-queue", type=int, default=64)
    shw.add_argument("--deadline", type=float, default=10.0)
    shw.add_argument("--state-dir", default=None,
                     help="durable state directory (WAL + checkpoints) "
                          "of this shard")
    shw.add_argument("--wal-fsync", choices=["always", "interval", "never"],
                     default="interval")
    shw.add_argument("--wal-fsync-interval", type=float, default=0.05)
    shw.add_argument("--checkpoint-every", type=int, default=0)
    shw.add_argument("--port-file", default=None,
                     help="write the bound port to this file once "
                          "listening")
    shw.add_argument("--supervised", action="store_true",
                     help="run under a crash-restarting supervisor")
    shw.add_argument("--max-restarts", type=int, default=0,
                     help="give up after this many supervised restarts "
                          "(0 = unlimited)")
    shw.set_defaults(func=_cmd_shard_worker)

    sb = sub.add_parser(
        "subscribe",
        help="register a standing NWC/kNWC query on a running server "
             "and stream its notifications as JSON lines")
    sb.add_argument("--host", default="127.0.0.1")
    sb.add_argument("--port", type=int, default=7654)
    sb.add_argument("-x", type=float, required=True,
                    help="query point x")
    sb.add_argument("-y", type=float, required=True,
                    help="query point y")
    sb.add_argument("--length", type=float, default=100.0)
    sb.add_argument("--width", type=float, default=100.0)
    sb.add_argument("-n", type=int, default=8)
    sb.add_argument("-k", type=int, default=None,
                    help="make it a kNWC subscription returning the "
                         "k best clusters")
    sb.add_argument("-m", type=int, default=0,
                    help="minimum cluster separation rank (kNWC only)")
    sb.add_argument("--sub", default=None,
                    help="subscription id (re-using one resumes it "
                         "after a reconnect); omitted, the server "
                         "assigns one")
    sb.add_argument("--count", type=int, default=None,
                    help="exit after this many notifications")
    sb.add_argument("--duration", type=float, default=None,
                    help="exit after this many seconds")
    sb.add_argument("--keep", action="store_true",
                    help="leave the subscription registered on exit "
                         "(resume later with --sub)")
    sb.set_defaults(func=_cmd_subscribe)

    fls = sub.add_parser(
        "fleet-status",
        help="per-shard qps/p99/prune/WAL-lag/SLO-burn table from a "
             "running shard coordinator")
    fls.add_argument("--host", default="127.0.0.1")
    fls.add_argument("--port", type=int, default=7654,
                     help="coordinator port")
    fls.add_argument("--interval", type=float, default=1.0,
                     help="seconds between the two metric scrapes each "
                          "rate is computed over")
    fls.add_argument("--watch", action="store_true",
                     help="refresh continuously until interrupted")
    fls.set_defaults(func=_cmd_fleet_status)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point.

    Engine, storage and validation failures exit with code 2 and a
    one-line message on stderr instead of a traceback; anything else is
    a genuine bug and propagates.
    """
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    args = build_parser().parse_args(raw_argv)
    args.raw_argv = raw_argv
    try:
        return args.func(args)
    except (NWCError, StorageError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
