"""Command-line interface: ``python -m repro`` / ``nwc-repro``.

Subcommands:

* ``experiment <id>`` — run one of the Section 5 experiments (``fig9``
  .. ``fig14``, ``table2``, ``table3``, ``storage``, ``costmodel``) and
  print the paper-style table; ``--csv`` also writes the raw rows.
* ``query`` — answer a single NWC/kNWC query against a generated
  dataset (handy for exploration).
"""

from __future__ import annotations

import argparse
import sys

from .core import KNWCQuery, NWCEngine, NWCError, NWCQuery, Scheme
from .datasets import ca_like, gaussian, ny_like
from .eval import (
    EXPERIMENTS,
    PARALLEL_EXPERIMENTS,
    format_table,
    parallel_experiment,
    pivot_by_scheme,
    save_csv,
)
from .index import RStarTree
from .storage import StorageError

_DATASETS = {
    "ca": lambda size: ca_like(size),
    "ny": lambda size: ny_like(size),
    "gaussian": lambda size: gaussian(size),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = EXPERIMENTS.get(args.id)
    if runner is None:
        print(f"unknown experiment {args.id!r}; choose from "
              f"{', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.queries is not None:
        kwargs["queries"] = args.queries
    jobs = args.jobs if args.jobs >= 1 else None  # None = one per CPU
    checkpoint = args.checkpoint
    if args.resume and checkpoint is None:
        checkpoint = f"{args.id}.sweep.jsonl"
    wants_sweep_features = (
        checkpoint is not None or args.timeout is not None or jobs != 1
    )
    if wants_sweep_features and args.id in PARALLEL_EXPERIMENTS:
        result = parallel_experiment(
            args.id, jobs=jobs, timeout=args.timeout, checkpoint=checkpoint,
            **kwargs,
        )
    else:
        if checkpoint is not None or args.timeout is not None:
            print(f"--resume/--timeout need a sweep experiment "
                  f"({', '.join(PARALLEL_EXPERIMENTS)}); "
                  f"{args.id!r} has no parallel driver", file=sys.stderr)
            return 2
        if jobs != 1:
            print(f"note: {args.id!r} has no parallel driver; running serially",
                  file=sys.stderr)
        result = runner(**kwargs)
    x_column = {
        "fig9": "grid_size", "fig10": "std", "fig11": "n",
        "fig12": "window", "fig13": "k", "fig14": "m",
    }.get(args.id)
    if x_column and any("scheme" in row for row in result.rows):
        print(pivot_by_scheme(result, x_column))
    else:
        print(format_table(result))
    if args.csv:
        save_csv(result, args.csv)
        print(f"\nrows written to {args.csv}")
    if result.meta.get("checkpoint"):
        print(f"checkpoint: {result.meta['checkpoint']} "
              f"({result.meta.get('resumed_cells', 0)} cells resumed)",
              file=sys.stderr)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    dataset = _DATASETS[args.dataset](args.size)
    tree = RStarTree.bulk_load(dataset.points)
    engine = NWCEngine(tree, Scheme[args.scheme])
    if args.k > 1:
        query = KNWCQuery.make(args.x, args.y, args.length, args.width,
                               args.n, args.k, args.m)
        result = engine.knwc(query)
        print(f"{len(result.groups)} group(s); node accesses: {result.node_accesses}")
        for rank, group in enumerate(result.groups, 1):
            oids = ", ".join(str(o) for o in sorted(group.oids))
            print(f"  #{rank}: dist={group.distance:.2f} objects=[{oids}]")
    else:
        result = engine.nwc(NWCQuery(args.x, args.y, args.length, args.width, args.n))
        if result.found:
            oids = ", ".join(str(p.oid) for p in result.objects)
            print(f"dist={result.distance:.2f} objects=[{oids}] "
                  f"window={result.group.window}")
        else:
            print("no qualified window exists")
        print(f"node accesses: {result.node_accesses}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="nwc-repro",
        description="Nearest Window Cluster queries (EDBT 2016) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run a Section 5 experiment")
    exp.add_argument("id", help=f"one of: {', '.join(sorted(EXPERIMENTS))}")
    exp.add_argument("--scale", type=float, default=None,
                     help="dataset scale (default from REPRO_SCALE or 0.05)")
    exp.add_argument("--queries", type=int, default=None,
                     help="queries per setting (paper: 25)")
    exp.add_argument("--jobs", type=int, default=1,
                     help="worker processes for figure sweeps "
                          "(1 = serial; 0 or negative = one per CPU)")
    exp.add_argument("--resume", action="store_true",
                     help="journal finished sweep cells and skip them on "
                          "rerun (figure sweeps only)")
    exp.add_argument("--checkpoint", default=None,
                     help="checkpoint journal path (default with --resume: "
                          "<id>.sweep.jsonl)")
    exp.add_argument("--timeout", type=float, default=None,
                     help="per-task timeout in seconds for parallel sweeps "
                          "(hung workers are retried, then run inline)")
    exp.add_argument("--csv", help="also write rows to this CSV file")
    exp.set_defaults(func=_cmd_experiment)

    qry = sub.add_parser("query", help="run a single NWC/kNWC query")
    qry.add_argument("--dataset", choices=sorted(_DATASETS), default="ca")
    qry.add_argument("--size", type=int, default=10_000,
                     help="dataset cardinality")
    qry.add_argument("--scheme", choices=[s.name for s in Scheme],
                     default="NWC_STAR")
    qry.add_argument("-x", type=float, default=5_000.0)
    qry.add_argument("-y", type=float, default=5_000.0)
    qry.add_argument("--length", type=float, default=100.0)
    qry.add_argument("--width", type=float, default=100.0)
    qry.add_argument("-n", type=int, default=8)
    qry.add_argument("-k", type=int, default=1)
    qry.add_argument("-m", type=int, default=0)
    qry.set_defaults(func=_cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point.

    Engine, storage and validation failures exit with code 2 and a
    one-line message on stderr instead of a traceback; anything else is
    a genuine bug and propagates.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (NWCError, StorageError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
